type t = { pf : Pfile.t; mutable fill_hint : int }

let create pool ~record_size =
  let pf = Pfile.create pool ~record_size in
  if Pfile.npages pf <> 0 then
    invalid_arg "Heap_file.create: disk is not empty";
  { pf; fill_hint = 0 }

let attach pool ~record_size =
  { pf = Pfile.create pool ~record_size; fill_hint = 0 }

let pfile t = t.pf

(* A read-path clone over a different buffer pool (see [Pfile.with_pool]):
   snapshot readers walk the same pages through private frames. *)
let with_pool t pool = { pf = Pfile.with_pool t.pf pool; fill_hint = t.fill_hint }

let insert t record =
  let n = Pfile.npages t.pf in
  if n = 0 then begin
    let page = Pfile.allocate_page t.pf in
    let tid = { Tid.page; slot = 0 } in
    Pfile.write_record t.pf tid record;
    tid
  end
  else begin
    (* First fit from the hint onward; the hint only moves forward, so holes
       left by deletions behind it are reused lazily after [delete] resets
       it. *)
    if t.fill_hint >= n then t.fill_hint <- n - 1;
    let rec go page =
      if page >= n then begin
        let fresh = Pfile.allocate_page t.pf in
        t.fill_hint <- fresh;
        let tid = { Tid.page = fresh; slot = 0 } in
        Pfile.write_record t.pf tid record;
        tid
      end
      else
        match
          Page.find_free_slot
            ~record_size:(Pfile.record_size t.pf)
            (Buffer_pool.read (Pfile.pool t.pf) page)
        with
        | Some slot ->
            t.fill_hint <- page;
            let tid = { Tid.page; slot } in
            Pfile.write_record t.pf tid record;
            tid
        | None -> go (page + 1)
    in
    go t.fill_hint
  end

let read t tid = Pfile.read_record t.pf tid
let update t tid record = Pfile.write_record t.pf tid record

let delete t tid =
  Pfile.clear_record t.pf tid;
  if tid.Tid.page < t.fill_hint then t.fill_hint <- tid.Tid.page

let scan_cursor ?window t =
  Cursor.of_pages ?window t.pf ~pages:(Seq.init (Pfile.npages t.pf) Fun.id)

(* A heap has no key: probes and ranges present everything and let the
   caller filter, as the eager paths always did. *)
let lookup_cursor ?window t _key = scan_cursor ?window t
let range_cursor ?window t ~lo:_ ~hi:_ = scan_cursor ?window t

module Access = struct
  type file = t

  let scan_cursor = scan_cursor
  let lookup_cursor = lookup_cursor
  let range_cursor = range_cursor
end

let iter ?window t f = Cursor.iter (scan_cursor ?window t) f

let npages t = Pfile.npages t.pf

let record_count t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n
