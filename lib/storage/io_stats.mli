(** Page I/O accounting.

    The paper's sole metric is "the number of disk accesses per query at a
    granularity of a page", counting only accesses to user relations.  Every
    buffer pool owns one of these counter records; the engine aggregates
    them per query.  A read is counted when a page must be fetched from the
    disk (a buffer miss); a write when a dirty page is flushed — split by
    cause into eviction writes and explicit sync writes.

    Since PR 2 this is a thin shim over [Tdb_obs.Metric]: the per-pool
    counters are raw obs counters (always exact, never gated), and every
    count also feeds the registered global [tdb_io_*] metrics and the
    current trace span, which is how per-operator I/O attribution works. *)

type t

val create : unit -> t
val reads : t -> int

val writes : t -> int
(** Total writes = [eviction_writes] + [sync_writes]. *)

val eviction_writes : t -> int
val sync_writes : t -> int
val total : t -> int
val count_read : t -> unit
val count_eviction_write : t -> unit
val count_sync_write : t -> unit

val count_write : t -> unit
(** Alias for {!count_sync_write} (the historical single counter). *)

val reset : t -> unit

val absorb : ?trace:bool -> into:t -> t -> unit
(** [absorb ~into part] folds a parallel-scan partition's private stats
    into the owning pool's counters and charges the pages to the current
    trace span.  The registered global [tdb_io_*] counters are {e not}
    touched: the partition already fed them at count time.  Pass
    [~trace:false] when the caller attributes the pages itself (e.g. to
    per-partition child spans) to avoid double-counting. *)

type snapshot = { reads : int; writes : int }

val snapshot : t -> snapshot
val diff : before:snapshot -> after:snapshot -> snapshot
val add : snapshot -> snapshot -> snapshot
val zero : snapshot
val pp_snapshot : snapshot Fmt.t
