module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type

type organization =
  | Heap
  | Hash of { key_attr : int; fillfactor : int }
  | Isam of { key_attr : int; fillfactor : int }

let organization_to_string = function
  | Heap -> "heap"
  | Hash { key_attr; fillfactor } ->
      Printf.sprintf "hash(attr %d, fillfactor %d)" key_attr fillfactor
  | Isam { key_attr; fillfactor } ->
      Printf.sprintf "isam(attr %d, fillfactor %d)" key_attr fillfactor

type impl =
  | Heap_impl of Heap_file.t
  | Hash_impl of Hash_file.t
  | Isam_impl of Isam_file.t

type t = {
  name : string;
  schema : Schema.t;
  disk : Disk.t;
  pool : Buffer_pool.t;
  stats : Io_stats.t;
  record_size : int;
  mutable org : organization;
  mutable impl : impl;
}

let attr_offset schema i =
  let off = ref 0 in
  for j = 0 to i - 1 do
    off := !off + Attr_type.size (Schema.attr schema j).Schema.ty
  done;
  !off

let key_extractor schema key_attr =
  let n = Schema.arity schema in
  if key_attr < 0 || key_attr >= n then
    invalid_arg
      (Printf.sprintf "Relation_file: key attribute %d out of range 0..%d"
         key_attr (n - 1));
  let ty = (Schema.attr schema key_attr).Schema.ty in
  let off = attr_offset schema key_attr in
  fun record -> Value.decode ty record off

let make ~frames ~backing ~fault ~recover ~name ~schema =
  let disk =
    match backing with
    | `Mem -> Disk.create_mem ?fault ()
    | `File p -> Disk.open_file ?fault ~recover p
  in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~frames disk stats in
  let record_size = Schema.tuple_size schema in
  {
    name;
    schema;
    disk;
    pool;
    stats;
    record_size;
    org = Heap;
    impl = Heap_impl (Heap_file.attach pool ~record_size);
  }

let create ?(frames = 1) ?(backing = `Mem) ?fault ~name ~schema () =
  make ~frames ~backing ~fault ~recover:false ~name ~schema

let name t = t.name
let schema t = t.schema
let organization t = t.org
let stats t = t.stats
let pool t = t.pool
let npages t = Buffer_pool.npages t.pool
let record_size t = t.record_size

let key_attr t =
  match t.org with
  | Heap -> None
  | Hash { key_attr; _ } | Isam { key_attr; _ } -> Some key_attr

let encode t tuple = Tuple.encode t.schema tuple
let decode t record = Tuple.decode t.schema record 0

let insert t tuple =
  let record = encode t tuple in
  match t.impl with
  | Heap_impl h -> Heap_file.insert h record
  | Hash_impl h -> Hash_file.insert h record
  | Isam_impl i -> Isam_file.insert i record

let read t tid =
  let record =
    match t.impl with
    | Heap_impl h -> Heap_file.read h tid
    | Hash_impl h -> Hash_file.read h tid
    | Isam_impl i -> Isam_file.read i tid
  in
  decode t record

let update t tid tuple =
  let record = encode t tuple in
  match t.impl with
  | Heap_impl h -> Heap_file.update h tid record
  | Hash_impl h -> Hash_file.update h tid record
  | Isam_impl i -> Isam_file.update i tid record

let delete t tid =
  match t.impl with
  | Heap_impl h -> Heap_file.delete h tid
  | Hash_impl h -> Hash_file.delete h tid
  | Isam_impl i -> Isam_file.delete i tid

let scan t f =
  let g tid record = f tid (decode t record) in
  match t.impl with
  | Heap_impl h -> Heap_file.iter h g
  | Hash_impl h -> Hash_file.iter h g
  | Isam_impl i -> Isam_file.iter i g

let lookup t key f =
  let g tid record = f tid (decode t record) in
  match t.impl with
  | Heap_impl h ->
      (* No key on a heap: filtered scan would need a key attribute; the
         caller has none, so present everything and let it filter. *)
      Heap_file.iter h g
  | Hash_impl h -> Hash_file.lookup h key g
  | Isam_impl i -> Isam_file.lookup i key g

let lookup_range t ?lo ?hi f =
  let g tid record = f tid (decode t record) in
  match (t.impl, t.org) with
  | Isam_impl i, _ -> Isam_file.iter_range i ?lo ?hi g
  | Hash_impl h, Hash { key_attr; _ } ->
      (* no order in a hash file: filter a scan *)
      let key_of = key_extractor t.schema key_attr in
      Hash_file.iter h (fun tid record ->
          let k = key_of record in
          let ok_lo =
            match lo with Some l -> Value.compare l k <= 0 | None -> true
          in
          let ok_hi =
            match hi with Some u -> Value.compare k u <= 0 | None -> true
          in
          if ok_lo && ok_hi then g tid record)
  | (Heap_impl _ | Hash_impl _), _ ->
      (* keyless: present everything, callers filter *)
      scan t f

let all_records t =
  let acc = ref [] in
  let g _tid record = acc := record :: !acc in
  (match t.impl with
  | Heap_impl h -> Heap_file.iter h g
  | Hash_impl h -> Hash_file.iter h g
  | Isam_impl i -> Isam_file.iter i g);
  List.rev !acc

let modify t org =
  let records = all_records t in
  Buffer_pool.invalidate t.pool;
  Disk.truncate t.disk;
  let record_size = t.record_size in
  let impl =
    match org with
    | Heap ->
        let h = Heap_file.attach t.pool ~record_size in
        List.iter (fun r -> ignore (Heap_file.insert h r)) records;
        Heap_impl h
    | Hash { key_attr; fillfactor } ->
        let key_of = key_extractor t.schema key_attr in
        Hash_impl
          (Hash_file.build t.pool ~record_size ~key_of ~fillfactor records)
    | Isam { key_attr; fillfactor } ->
        let key_of = key_extractor t.schema key_attr in
        let key_type = (Schema.attr t.schema key_attr).Schema.ty in
        Isam_impl
          (Isam_file.build t.pool ~record_size ~key_of ~key_type ~fillfactor
             records)
  in
  t.org <- org;
  t.impl <- impl

let tuple_count t =
  let n = ref 0 in
  scan t (fun _ _ -> incr n);
  !n

type org_meta =
  | Heap_meta
  | Hash_meta of { key_attr : int; fillfactor : int; buckets : int }
  | Isam_meta of {
      key_attr : int;
      fillfactor : int;
      ndata : int;
      levels : (int * int) list;
    }

let org_meta t =
  match t.impl with
  | Heap_impl _ -> Heap_meta
  | Hash_impl h -> (
      match t.org with
      | Hash { key_attr; fillfactor } ->
          Hash_meta { key_attr; fillfactor; buckets = Hash_file.buckets h }
      | _ -> assert false)
  | Isam_impl i -> (
      match t.org with
      | Isam { key_attr; fillfactor } ->
          Isam_meta
            {
              key_attr;
              fillfactor;
              ndata = Isam_file.data_pages i;
              levels = Isam_file.levels i;
            }
      | _ -> assert false)

let attach ?(frames = 1) ?fault ?(recover = true) ~backing ~name ~schema meta =
  let t = make ~frames ~backing ~fault ~recover ~name ~schema in
  (match meta with
  | Heap_meta -> ()
  | Hash_meta { key_attr; fillfactor; buckets } ->
      let key_of = key_extractor schema key_attr in
      t.org <- Hash { key_attr; fillfactor };
      t.impl <-
        Hash_impl
          (Hash_file.attach t.pool ~record_size:t.record_size ~key_of
             ~fillfactor ~buckets)
  | Isam_meta { key_attr; fillfactor; ndata; levels } ->
      let key_of = key_extractor schema key_attr in
      let key_type = (Schema.attr schema key_attr).Schema.ty in
      t.org <- Isam { key_attr; fillfactor };
      t.impl <-
        Isam_impl
          (Isam_file.attach t.pool ~record_size:t.record_size ~key_of ~key_type
             ~fillfactor ~ndata ~levels));
  t

let set_first_fit t v =
  match t.impl with
  | Heap_impl h -> Pfile.set_first_fit (Heap_file.pfile h) v
  | Hash_impl h -> Pfile.set_first_fit (Hash_file.pfile h) v
  | Isam_impl i -> Pfile.set_first_fit (Isam_file.pfile i) v

let recovery t = Disk.recovery_report t.disk

let sync t =
  Buffer_pool.sync t.pool;
  (* checkpoint boundary: pages written from here on carry the next epoch *)
  Disk.bump_epoch t.disk

let close t =
  Buffer_pool.flush t.pool;
  Disk.fsync t.disk;
  Disk.close t.disk

let abandon t = Disk.close t.disk
