module Schema = Tdb_relation.Schema
module Tuple = Tdb_relation.Tuple
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Chronon = Tdb_time.Chronon

type organization =
  | Heap
  | Hash of { key_attr : int; fillfactor : int }
  | Isam of { key_attr : int; fillfactor : int }

let organization_to_string = function
  | Heap -> "heap"
  | Hash { key_attr; fillfactor } ->
      Printf.sprintf "hash(attr %d, fillfactor %d)" key_attr fillfactor
  | Isam { key_attr; fillfactor } ->
      Printf.sprintf "isam(attr %d, fillfactor %d)" key_attr fillfactor

type impl =
  | Heap_impl of Heap_file.t
  | Hash_impl of Hash_file.t
  | Isam_impl of Isam_file.t

type t = {
  name : string;
  schema : Schema.t;
  disk : Disk.t;
  pool : Buffer_pool.t;
  stats : Io_stats.t;
  record_size : int;
  mutable org : organization;
  mutable impl : impl;
  stamp : (bytes -> Time_fence.stamp) option;
      (* derived from the schema's implicit time attributes; [None] for a
         static relation, which then keeps no fences *)
  sidecar : string option;
      (* where the fence summary persists for file-backed relations *)
  fault : Fault.t option;
      (* the database's fault plan, threaded into sidecar writes so the
         crash harness covers their windows too *)
  mutable journal : Journal.t option;
      (* the database's write-ahead journal, when statements are
         journalled; the pool carries the per-page hooks *)
}

let attr_offset schema i =
  let off = ref 0 in
  for j = 0 to i - 1 do
    off := !off + Attr_type.size (Schema.attr schema j).Schema.ty
  done;
  !off

let key_extractor schema key_attr =
  let n = Schema.arity schema in
  if key_attr < 0 || key_attr >= n then
    invalid_arg
      (Printf.sprintf "Relation_file: key attribute %d out of range 0..%d"
         key_attr (n - 1));
  let ty = (Schema.attr schema key_attr).Schema.ty in
  let off = attr_offset schema key_attr in
  fun record -> Value.decode ty record off

(* Decode one implicit time attribute straight out of the record bytes,
   without materialising the whole tuple. *)
let time_getter schema i =
  let off = attr_offset schema i in
  fun record ->
    match Value.decode Attr_type.Time record off with
    | Value.Time t -> t
    | _ -> assert false

let stamp_extractor schema =
  let transaction =
    match
      (Schema.transaction_start_index schema,
       Schema.transaction_stop_index schema)
    with
    | Some s, Some e ->
        let gs = time_getter schema s and ge = time_getter schema e in
        Some (fun record -> Some (gs record, ge record))
    | _ -> None
  in
  let valid =
    match (Schema.valid_from_index schema, Schema.valid_at_index schema) with
    | Some f, _ ->
        let gf = time_getter schema f in
        let gt =
          match Schema.valid_to_index schema with
          | Some i -> time_getter schema i
          | None -> fun _ -> Chronon.forever
        in
        Some (fun record -> Some (gf record, gt record))
    | None, Some a ->
        let ga = time_getter schema a in
        (* an event: Time_fence.stamp normalises (v, v) to [v, succ v) *)
        Some (fun record -> let v = ga record in Some (v, v))
    | None, None -> None
  in
  match (transaction, valid) with
  | None, None -> None (* static relation: nothing to fence on *)
  | _ ->
      let tr = Option.value transaction ~default:(fun _ -> None) in
      let va = Option.value valid ~default:(fun _ -> None) in
      Some
        (fun record ->
          Time_fence.stamp ~transaction:(tr record) ~valid:(va record))

let sidecar_path pages_path = pages_path ^ ".fences"

let make ~frames ~backing ~fault ~recover ~name ~schema =
  let disk =
    match backing with
    | `Mem -> Disk.create_mem ?fault ()
    | `File p -> Disk.open_file ?fault ~recover p
  in
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~frames disk stats in
  let record_size = Schema.tuple_size schema in
  {
    name;
    schema;
    disk;
    pool;
    stats;
    record_size;
    org = Heap;
    impl = Heap_impl (Heap_file.attach pool ~record_size);
    stamp = stamp_extractor schema;
    sidecar =
      (match backing with `Mem -> None | `File p -> Some (sidecar_path p));
    fault;
    journal = None;
  }

let set_journal t j =
  t.journal <- Some j;
  Buffer_pool.attach_journal t.pool j ~file:t.name

let data_pf t =
  match t.impl with
  | Heap_impl h -> Heap_file.pfile h
  | Hash_impl h -> Hash_file.pfile h
  | Isam_impl i -> Isam_file.pfile i

(* A snapshot reader's private view of the relation: same disk, same
   pages, but a private 1-frame buffer pool and private I/O counters, so
   concurrent readers never contend on (or dirty) the relation's own pool
   and never skew its statistics.  The clone is built by rebinding the
   pools of the {e current} impl values — never via [attach], which
   performs page I/O to rebuild in-memory metadata.  [journal = None]:
   a view never writes, and must not install journal hooks.  The caller
   is responsible for flushing the relation's own pool first (see
   [Database.flush_pools]) so the shared disk holds every published
   page. *)
let reader_view t =
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~frames:1 t.disk stats in
  let impl =
    match t.impl with
    | Heap_impl h -> Heap_impl (Heap_file.with_pool h pool)
    | Hash_impl h -> Hash_impl (Hash_file.with_pool h pool)
    | Isam_impl i -> Isam_impl (Isam_file.with_pool i pool)
  in
  { t with pool; stats; impl; journal = None }

(* The chain heads of the data area: every record lives on a chain rooted
   at one of these (heap pages have no chains, so each page is its own
   head).  Directory pages of an ISAM file are excluded — they hold keys,
   not records, and are never fence-checked. *)
let data_heads t =
  match t.impl with
  | Heap_impl h -> Heap_file.npages h
  | Hash_impl h -> Hash_file.buckets h
  | Isam_impl i -> Isam_file.data_pages i

let rebuild_fences t =
  let pf = data_pf t in
  for head = 0 to data_heads t - 1 do
    Pfile.rebuild_chain_fences pf ~head
  done

(* --- persisted fence summary (the "<name>.pages.fences" sidecar) ---

   The summary is only trusted when it provably describes the page file as
   stored: the page count must match and no page may carry an epoch newer
   than the one recorded at summary-write time (pages written after the
   summary was taken get a newer stamp, and [Disk.epoch] at open is one
   past the newest stamp found).  A recovery pass that repaired anything
   also invalidates it.  Anything suspicious falls back to a rebuild scan,
   which is always sound. *)

let write_sidecar t ~epoch =
  match (t.sidecar, t.stamp) with
  | Some path, Some _ when Pfile.fences_enabled (data_pf t) ->
      let pf = data_pf t in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "tdbfences 1\n";
      Buffer.add_string buf (Printf.sprintf "epoch %d\n" epoch);
      Buffer.add_string buf
        (Printf.sprintf "npages %d\n" (Disk.npages t.disk));
      List.iter
        (fun (page, fence) ->
          Buffer.add_string buf
            (Printf.sprintf "page %d %s\n" page
               (String.concat " " (Time_fence.to_fields fence))))
        (List.sort compare (Pfile.fence_entries pf));
      List.iter
        (fun (page, next) ->
          Buffer.add_string buf (Printf.sprintf "link %d %d\n" page next))
        (List.sort compare (Pfile.link_entries pf));
      Atomic_file.write ?fault:t.fault ~path (Buffer.contents buf)
  | _ -> ()

let load_sidecar t path =
  let pf = data_pf t in
  (* Only trust the summary when a recovery pass ran cleanly: the pass is
     what establishes [Disk.epoch] (one past the newest page stamp), which
     the staleness check below relies on. *)
  let clean_pass =
    match Disk.recovery_report t.disk with
    | Some r -> not (Disk.recovery_repaired r)
    | None -> false
  in
  if (not clean_pass) || not (Sys.file_exists path) then false
  else begin
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    match lines with
    | magic :: epoch_line :: npages_line :: rest
      when magic = "tdbfences 1" -> (
        let field prefix line =
          match String.split_on_char ' ' line with
          | [ p; v ] when p = prefix -> int_of_string_opt v
          | _ -> None
        in
        match (field "epoch" epoch_line, field "npages" npages_line) with
        | Some epoch, Some npages
          when npages = Disk.npages t.disk && Disk.epoch t.disk <= epoch ->
            let ok = ref true in
            List.iter
              (fun line ->
                match String.split_on_char ' ' line with
                | "page" :: page :: fields -> (
                    match
                      (int_of_string_opt page, Time_fence.of_fields fields)
                    with
                    | Some page, Some fence -> Pfile.set_fence pf page fence
                    | _ -> ok := false)
                | [ "link"; page; next ] -> (
                    match (int_of_string_opt page, int_of_string_opt next) with
                    | Some page, Some next ->
                        Pfile.set_cached_link pf page (Some next)
                    | _ -> ok := false)
                | _ -> ok := false)
              rest;
            !ok
        | _ -> false)
    | _ -> false
  end

(* Enable fencing on the current impl's data pfile.  For a non-empty file
   the fences must describe the stored records before any window-bounded
   walk runs: load the persisted summary when it is provably current,
   otherwise rebuild by scanning (the recovery path). *)
let init_fences t =
  match t.stamp with
  | None -> ()
  | Some stamp ->
      let pf = data_pf t in
      Pfile.enable_fences pf ~stamp;
      if Disk.npages t.disk > 0 then begin
        let loaded =
          match t.sidecar with
          | Some path -> (
              match load_sidecar t path with
              | true -> true
              | false | (exception _) ->
                  (* a half-parsed summary may have planted entries *)
                  Pfile.enable_fences pf ~stamp;
                  false)
          | None -> false
        in
        if not loaded then rebuild_fences t
      end

let create ?(frames = 1) ?(backing = `Mem) ?fault ~name ~schema () =
  let t = make ~frames ~backing ~fault ~recover:false ~name ~schema in
  init_fences t;
  t

let name t = t.name
let schema t = t.schema
let organization t = t.org
let stats t = t.stats
let pool t = t.pool
let npages t = Buffer_pool.npages t.pool
let record_size t = t.record_size

let key_attr t =
  match t.org with
  | Heap -> None
  | Hash { key_attr; _ } | Isam { key_attr; _ } -> Some key_attr

let encode t tuple = Tuple.encode t.schema tuple
let decode t record = Tuple.decode t.schema record 0

let insert t tuple =
  let record = encode t tuple in
  match t.impl with
  | Heap_impl h -> Heap_file.insert h record
  | Hash_impl h -> Hash_file.insert h record
  | Isam_impl i -> Isam_file.insert i record

let read t tid =
  let record =
    match t.impl with
    | Heap_impl h -> Heap_file.read h tid
    | Hash_impl h -> Hash_file.read h tid
    | Isam_impl i -> Isam_file.read i tid
  in
  decode t record

let update t tid tuple =
  let record = encode t tuple in
  match t.impl with
  | Heap_impl h -> Heap_file.update h tid record
  | Hash_impl h -> Hash_file.update h tid record
  | Isam_impl i -> Isam_file.update i tid record

let delete t tid =
  match t.impl with
  | Heap_impl h -> Heap_file.delete h tid
  | Hash_impl h -> Hash_file.delete h tid
  | Isam_impl i -> Isam_file.delete i tid

(* --- the unified access-path layer --- *)

type access_path =
  | Full_scan
  | Key_lookup of Value.t
  | Key_range of { lo : Value.t option; hi : Value.t option }

(* Every organization answers every access path with a batch cursor over
   raw records; keyless organizations degrade gracefully (a heap answers
   a probe with a full scan and the caller filters, as always).  This is
   the single dispatch point the executor's plan nodes resolve through. *)
let cursor ?window t access =
  match (t.impl, access) with
  | Heap_impl h, Full_scan -> Heap_file.scan_cursor ?window h
  | Heap_impl h, Key_lookup key -> Heap_file.lookup_cursor ?window h key
  | Heap_impl h, Key_range { lo; hi } -> Heap_file.range_cursor ?window h ~lo ~hi
  | Hash_impl h, Full_scan -> Hash_file.scan_cursor ?window h
  | Hash_impl h, Key_lookup key -> Hash_file.lookup_cursor ?window h key
  | Hash_impl h, Key_range { lo; hi } -> Hash_file.range_cursor ?window h ~lo ~hi
  | Isam_impl i, Full_scan -> Isam_file.scan_cursor ?window i
  | Isam_impl i, Key_lookup key -> Isam_file.lookup_cursor ?window i key
  | Isam_impl i, Key_range { lo; hi } -> Isam_file.range_cursor ?window i ~lo ~hi

(* --- partition-parallel execution ---

   Split an access path into [parts] page-disjoint partitions for
   parallel execution.  Partitioning is by contiguous ranges of the
   chain heads the access walks, in walk order: heap pages have no
   chains (each page is its own head), and hash buckets / ISAM primary
   pages own their overflow chains outright (overflow pages are
   allocated per chain), so no page can appear in two partitions.  A
   keyed hash probe walks a single chain, so it partitions by contiguous
   page runs of that chain instead.  Each partition reads through a
   private 1-frame buffer pool with private stats — concatenating the
   partitions in order yields exactly the sequential cursor's rows, and
   summing their reads yields exactly the sequential read count (a fresh
   1-frame pool misses on precisely the pages a fresh sequential access
   misses).

   Time shards: with fencing on and a bounded window, a head whose every
   chain page is fence-refuted is dropped before any worker sees it.
   The drop is charged exactly what the sequential per-page walk would
   have charged — one fence check and one skipped page per page — and
   heads that survive are charged nothing here (their workers re-check
   each page, as the sequential walk does), so the prune counters stay
   bit-identical to sequential execution. *)

type par_plan = {
  pp_parts : int;
  pp_pages : int;
  pp_pruned_pages : int;
}

(* The window under which shard pruning may act at all — mirrors the
   preconditions of [Pfile.skippable] so build-time refutation agrees
   exactly with what each worker's per-page walk would decide. *)
let prune_window t window =
  match (window, t.stamp) with
  | Some w, Some _
    when Pfile.fences_enabled (data_pf t)
         && Time_fence.pruning_enabled ()
         && not (Time_fence.window_is_unbounded w) ->
      Some w
  | _ -> None

(* Missing fence entry = nothing written since fencing was enabled =
   empty page: refuted under any bounded window, as in [Pfile]. *)
let page_refuted pf w page =
  match Pfile.fence_of pf page with
  | Some f -> not (Time_fence.may_overlap f w)
  | None -> true

(* The partitionable shape of an access path on the current
   organization: which chain heads the access walks (plus the record
   filter the sequential cursor applies), or — for a keyed hash probe —
   which single chain's pages. *)
type shape =
  | Heads of { heads : int list; filter : (bytes -> bool) option }
  | Chain of { pages : int list; filter : bytes -> bool }

let all_heads t = List.init (data_heads t) Fun.id

(* An ISAM probe's primary pages form one contiguous run; [charged]
   selects the real (counted) directory descent for execution vs the
   in-memory replay for charge-free previews. *)
let isam_shape ~charged i ~lo ~hi =
  let first, stop =
    if charged then Isam_file.range_run i ~lo ~hi
    else Isam_file.range_run_mem i ~lo ~hi
  in
  let heads = List.init (stop - first) (fun k -> first + k) in
  Some (Heads { heads; filter = Some (Isam_file.range_filter i ~lo ~hi) })

let shape ~charged t access =
  match (t.impl, access) with
  | _, Full_scan -> Some (Heads { heads = all_heads t; filter = None })
  | Heap_impl _, (Key_lookup _ | Key_range _) ->
      (* a heap answers probes with a full scan; callers filter *)
      Some (Heads { heads = all_heads t; filter = None })
  | Hash_impl h, Key_lookup key -> (
      match
        Pfile.cached_chain_pages (Hash_file.pfile h)
          ~head:(Hash_file.bucket_of h key)
      with
      | Some pages ->
          Some (Chain { pages; filter = Hash_file.lookup_filter h key })
      | None -> None (* fencing off: the chain's length is unknown for free *))
  | Hash_impl _, Key_range { lo = None; hi = None } ->
      Some (Heads { heads = all_heads t; filter = None })
  | Hash_impl h, Key_range { lo; hi } ->
      (* no order in a hash file: a filtered full scan *)
      Some
        (Heads
           {
             heads = all_heads t;
             filter = Some (Hash_file.range_filter h ~lo ~hi);
           })
  | Isam_impl i, Key_lookup key ->
      isam_shape ~charged i ~lo:(Some key) ~hi:(Some key)
  | Isam_impl i, Key_range { lo; hi } -> isam_shape ~charged i ~lo ~hi

(* A head's full page list, from the mirrored overflow links alone (no
   I/O); [None] when fencing is off and the org is chained. *)
let head_pages t pf head =
  match t.impl with
  | Heap_impl _ -> Some [ head ]
  | Hash_impl _ | Isam_impl _ -> Pfile.cached_chain_pages pf ~head

let split_runs lst nparts =
  let arr = Array.of_list lst in
  let n = Array.length arr in
  List.init nparts (fun i ->
      let lo = i * n / nparts and hi = (i + 1) * n / nparts in
      Array.to_list (Array.sub arr lo (hi - lo)))

let partition_preview ?window t ~parts access =
  match shape ~charged:false t access with
  | None -> None
  | Some sh ->
      let pf = data_pf t in
      let w = prune_window t window in
      let plan ~live_units ~live_pages ~pruned =
        Some
          {
            pp_parts = max 1 (min parts (max 1 live_units));
            pp_pages = live_pages;
            pp_pruned_pages = pruned;
          }
      in
      (match (sh, w) with
      | Chain { pages; _ }, None ->
          let n = List.length pages in
          plan ~live_units:n ~live_pages:n ~pruned:0
      | Chain { pages; _ }, Some w ->
          let total = List.length pages in
          let alive =
            List.length
              (List.filter (fun p -> not (page_refuted pf w p)) pages)
          in
          plan ~live_units:alive ~live_pages:alive ~pruned:(total - alive)
      | Heads { heads; _ }, Some w ->
          (* a bounded prune window implies fencing is on, so every
             head's chain is enumerable for free *)
          let live_heads = ref 0 and live_pages = ref 0 and pruned = ref 0 in
          List.iter
            (fun head ->
              match head_pages t pf head with
              | Some pages ->
                  let alive =
                    List.length
                      (List.filter (fun p -> not (page_refuted pf w p)) pages)
                  in
                  if alive > 0 then incr live_heads;
                  live_pages := !live_pages + alive;
                  pruned := !pruned + List.length pages - alive
              | None ->
                  incr live_heads;
                  incr live_pages)
            heads;
          plan ~live_units:!live_heads ~live_pages:!live_pages ~pruned:!pruned
      | Heads { heads; _ }, None ->
          let nheads = List.length heads in
          let pages =
            match t.impl with
            | Heap_impl _ -> nheads
            | Hash_impl _ | Isam_impl _ ->
                if Pfile.fences_enabled pf then
                  List.fold_left
                    (fun acc head ->
                      match head_pages t pf head with
                      | Some pages -> acc + List.length pages
                      | None -> acc + 1)
                    0 heads
                else
                  (* fence-free estimate: the whole file (for a subset
                     run this overshoots; admission only needs an order
                     of magnitude) *)
                  Pfile.npages pf
          in
          plan ~live_units:nheads ~live_pages:pages ~pruned:0)

let partition_access ?window t ~parts access =
  match shape ~charged:true t access with
  | None -> None
  | Some sh ->
      (* Dirty frames in the relation's own pool are invisible to the
         private pools, which read the disk directly; push them down
         first.  On the read-only query path this is a no-op. *)
      Buffer_pool.flush t.pool;
      let pf = data_pf t in
      let w = prune_window t window in
      let mk_part cursor_of =
        let stats = Io_stats.create () in
        let pool = Buffer_pool.create ~frames:1 t.disk stats in
        let pf' = Pfile.with_pool pf pool in
        (cursor_of pf', stats)
      in
      (* A refuted shard is charged exactly what the sequential per-page
         walk would have charged: one fence check and one skip per page. *)
      let charge_refuted npages =
        for _ = 1 to npages do
          Time_fence.note_check ()
        done;
        Time_fence.note_skipped npages
      in
      let parts_of live mk =
        if live = [] then [ (Cursor.empty, Io_stats.create ()) ]
        else
          let nparts = max 1 (min parts (List.length live)) in
          List.map (fun slice -> mk_part (mk slice)) (split_runs live nparts)
      in
      (match sh with
      | Chain { pages; filter } ->
          let live =
            match w with
            | None -> pages
            | Some w ->
                List.filter
                  (fun p ->
                    if page_refuted pf w p then begin
                      charge_refuted 1;
                      false
                    end
                    else true)
                  pages
          in
          Some
            (parts_of live (fun slice pf' ->
                 Cursor.of_pages ?window ~filter pf'
                   ~pages:(List.to_seq slice)))
      | Heads { heads; filter } ->
          let live =
            match w with
            | None -> heads
            | Some w ->
                List.filter
                  (fun head ->
                    match head_pages t pf head with
                    | Some pages when List.for_all (page_refuted pf w) pages ->
                        charge_refuted (List.length pages);
                        false
                    | _ -> true)
                  heads
          in
          Some
            (parts_of live (fun slice pf' ->
                 let hs = List.to_seq slice in
                 match t.impl with
                 | Heap_impl _ -> Cursor.of_pages ?window ?filter pf' ~pages:hs
                 | Hash_impl _ | Isam_impl _ ->
                     Cursor.of_chains ?window ?filter pf' ~heads:hs)))

let scan_partitions ?window t ~parts =
  match partition_preview ?window t ~parts Full_scan with
  | Some p -> p.pp_parts
  | None -> max 1 (min parts (data_heads t))

let partition_scan ?window t ~parts =
  match partition_access ?window t ~parts Full_scan with
  | Some parts -> parts
  | None -> assert false (* a full scan always has a shape *)

(* Test one record's transaction period against a fixed window straight
   from its bytes, mirroring [Tuple.transaction_period] composed with
   [Period.overlaps] exactly (including the degenerate stop < start event
   normalisation and the boundary-chronon rule), so an executor can
   refute a version against an as-of window before paying for a full
   decode — without allocating per record on the hot scan path.  [None]
   for schemas without transaction time — exactly when
   [Tuple.transaction_period] answers [None] and the as-of test passes
   every tuple. *)
let transaction_overlaps t =
  match
    (Schema.transaction_start_index t.schema,
     Schema.transaction_stop_index t.schema)
  with
  | Some s, Some e ->
      let soff = attr_offset t.schema s and eoff = attr_offset t.schema e in
      Some
        (fun w ->
          let wf = Tdb_time.Period.from_ w and wt = Tdb_time.Period.to_ w in
          fun record ->
            let start =
              Chronon.of_seconds (Int32.to_int (Bytes.get_int32_be record soff))
            in
            let stop =
              Chronon.of_seconds (Int32.to_int (Bytes.get_int32_be record eoff))
            in
            (* A degenerate stop < start pair denotes an event at start. *)
            let pt = if Chronon.compare stop start < 0 then start else stop in
            let lo = Chronon.max start wf and hi = Chronon.min pt wt in
            match Chronon.compare lo hi with
            | c when c < 0 -> true
            | 0 ->
                (* The shared boundary chronon counts only if both
                   periods contain it (events do; half-open intervals
                   exclude their end). *)
                (if Chronon.equal start pt then Chronon.equal start lo
                 else
                   Chronon.compare start lo <= 0 && Chronon.compare lo pt < 0)
                &&
                if Chronon.equal wf wt then Chronon.equal wf lo
                else Chronon.compare wf lo <= 0 && Chronon.compare lo wt < 0
            | _ -> false)
  | _ -> None

let scan ?window t f =
  Cursor.iter (cursor ?window t Full_scan) (fun tid r -> f tid (decode t r))

let lookup ?window t key f =
  Cursor.iter (cursor ?window t (Key_lookup key)) (fun tid r ->
      f tid (decode t r))

let lookup_range ?window t ?lo ?hi f =
  Cursor.iter (cursor ?window t (Key_range { lo; hi })) (fun tid r ->
      f tid (decode t r))

let all_records t =
  let acc = ref [] in
  let g _tid record = acc := record :: !acc in
  (match t.impl with
  | Heap_impl h -> Heap_file.iter h g
  | Hash_impl h -> Hash_file.iter h g
  | Isam_impl i -> Isam_file.iter i g);
  List.rev !acc

let modify t org =
  let records = all_records t in
  (* A reorganization destroys the whole file and rebuilds it — the
     largest crash window there is.  Journal a pre-image of every live
     page (plus the base extent) and make them durable before the
     truncate; the rebuild's own writes are then journalled page by page
     through the pool, and commit captures the post-state. *)
  (match t.journal with
  | Some j when Journal.in_statement j ->
      Journal.note_truncate j ~file:t.name;
      Journal.ensure_durable j
  | _ -> ());
  Buffer_pool.invalidate t.pool;
  Disk.truncate t.disk;
  let record_size = t.record_size in
  let impl =
    match org with
    | Heap ->
        let h = Heap_file.attach t.pool ~record_size in
        List.iter (fun r -> ignore (Heap_file.insert h r)) records;
        Heap_impl h
    | Hash { key_attr; fillfactor } ->
        let key_of = key_extractor t.schema key_attr in
        Hash_impl
          (Hash_file.build t.pool ~record_size ~key_of ~fillfactor records)
    | Isam { key_attr; fillfactor } ->
        let key_of = key_extractor t.schema key_attr in
        let key_type = (Schema.attr t.schema key_attr).Schema.ty in
        Isam_impl
          (Isam_file.build t.pool ~record_size ~key_of ~key_type ~fillfactor
             records)
  in
  t.org <- org;
  t.impl <- impl;
  (* the rebuild created fresh pfiles; re-derive their fences *)
  init_fences t

let tuple_count t =
  let n = ref 0 in
  scan t (fun _ _ -> incr n);
  !n

type org_meta =
  | Heap_meta
  | Hash_meta of { key_attr : int; fillfactor : int; buckets : int }
  | Isam_meta of {
      key_attr : int;
      fillfactor : int;
      ndata : int;
      levels : (int * int) list;
    }

let org_meta t =
  match t.impl with
  | Heap_impl _ -> Heap_meta
  | Hash_impl h -> (
      match t.org with
      | Hash { key_attr; fillfactor } ->
          Hash_meta { key_attr; fillfactor; buckets = Hash_file.buckets h }
      | _ -> assert false)
  | Isam_impl i -> (
      match t.org with
      | Isam { key_attr; fillfactor } ->
          Isam_meta
            {
              key_attr;
              fillfactor;
              ndata = Isam_file.data_pages i;
              levels = Isam_file.levels i;
            }
      | _ -> assert false)

let attach ?(frames = 1) ?fault ?(recover = true) ~backing ~name ~schema meta =
  let t = make ~frames ~backing ~fault ~recover ~name ~schema in
  (match meta with
  | Heap_meta -> ()
  | Hash_meta { key_attr; fillfactor; buckets } ->
      let key_of = key_extractor schema key_attr in
      t.org <- Hash { key_attr; fillfactor };
      t.impl <-
        Hash_impl
          (Hash_file.attach t.pool ~record_size:t.record_size ~key_of
             ~fillfactor ~buckets)
  | Isam_meta { key_attr; fillfactor; ndata; levels } ->
      let key_of = key_extractor schema key_attr in
      let key_type = (Schema.attr schema key_attr).Schema.ty in
      t.org <- Isam { key_attr; fillfactor };
      t.impl <-
        Isam_impl
          (Isam_file.attach t.pool ~record_size:t.record_size ~key_of ~key_type
             ~fillfactor ~ndata ~levels));
  init_fences t;
  t

let set_first_fit t v =
  match t.impl with
  | Heap_impl h -> Pfile.set_first_fit (Heap_file.pfile h) v
  | Hash_impl h -> Pfile.set_first_fit (Hash_file.pfile h) v
  | Isam_impl i -> Pfile.set_first_fit (Isam_file.pfile i) v

let recovery t = Disk.recovery_report t.disk
let fences_enabled t = Pfile.fences_enabled (data_pf t)
let fence_sidecar t = t.sidecar

let sync t =
  Buffer_pool.sync t.pool;
  (* checkpoint boundary: pages written from here on carry the next epoch *)
  Disk.bump_epoch t.disk;
  (* The summary records the post-bump epoch: any later page write stamps
     that epoch onto a page, which makes the stored summary provably stale
     at the next open (Disk.epoch will be past it) and forces a rebuild. *)
  write_sidecar t ~epoch:(Disk.epoch t.disk)

let close t =
  Buffer_pool.flush t.pool;
  Disk.fsync t.disk;
  (* Pages flushed here carry the current epoch, so at the next open
     [Disk.epoch] is one past it: record that as the summary's epoch. *)
  write_sidecar t ~epoch:(Disk.epoch t.disk + 1);
  Disk.close t.disk

let abandon t = Disk.close t.disk
