let size = 1024

(* Trailer layout, from the end of the page backwards:
     [size-12 .. size-9]  overflow page id + 1 (0 = none)
     [size-8  .. size-5]  write epoch (checkpoint generation of the writer)
     [size-4  .. size-1]  CRC-32 of bytes [0, size-4)  *)
let checksum_bytes = 4
let epoch_bytes = 4
let overflow_bytes = 4
let trailer = overflow_bytes + epoch_bytes + checksum_bytes
let overflow_offset = size - trailer
let epoch_offset = size - checksum_bytes - epoch_bytes
let checksum_offset = size - checksum_bytes
let slot_header = 2

let capacity ~record_size =
  let c = (size - trailer) / (record_size + slot_header) in
  if c < 1 then
    invalid_arg
      (Printf.sprintf "Page.capacity: record of %d bytes does not fit a page"
         record_size)
  else c

let create () = Bytes.make size '\000'

let get_overflow page =
  match Int32.to_int (Bytes.get_int32_be page overflow_offset) with
  | 0 -> None
  | n -> Some (n - 1)

let set_overflow page next =
  let stored = match next with None -> 0 | Some id -> id + 1 in
  Bytes.set_int32_be page overflow_offset (Int32.of_int stored)

let get_epoch page =
  Int32.to_int (Bytes.get_int32_be page epoch_offset) land 0xFFFFFFFF

let stored_checksum page =
  Int32.to_int (Bytes.get_int32_be page checksum_offset) land 0xFFFFFFFF

let seal ~epoch page =
  Bytes.set_int32_be page epoch_offset (Int32.of_int epoch);
  Bytes.set_int32_be page checksum_offset
    (Int32.of_int (Crc32.digest page ~pos:0 ~len:checksum_offset))

let check page =
  Bytes.length page = size
  && stored_checksum page = Crc32.digest page ~pos:0 ~len:checksum_offset

let slot_offset ~record_size slot = slot * (record_size + slot_header)

let check_slot ~record_size slot =
  if slot < 0 || slot >= capacity ~record_size then
    invalid_arg (Printf.sprintf "Page: slot %d out of range" slot)

let slot_used ~record_size page slot =
  check_slot ~record_size slot;
  Bytes.get_uint16_be page (slot_offset ~record_size slot) <> 0

let read_record ~record_size page slot =
  if not (slot_used ~record_size page slot) then
    invalid_arg (Printf.sprintf "Page.read_record: slot %d is free" slot);
  Bytes.sub page (slot_offset ~record_size slot + slot_header) record_size

let write_record ~record_size page slot record =
  check_slot ~record_size slot;
  if Bytes.length record <> record_size then
    invalid_arg "Page.write_record: record size mismatch";
  let off = slot_offset ~record_size slot in
  Bytes.set_uint16_be page off 1;
  Bytes.blit record 0 page (off + slot_header) record_size

let clear_slot ~record_size page slot =
  check_slot ~record_size slot;
  Bytes.set_uint16_be page (slot_offset ~record_size slot) 0

let find_free_slot ~record_size page =
  let cap = capacity ~record_size in
  let rec go slot =
    if slot >= cap then None
    else if not (slot_used ~record_size page slot) then Some slot
    else go (slot + 1)
  in
  go 0

let used_count ~record_size page =
  let cap = capacity ~record_size in
  let n = ref 0 in
  for slot = 0 to cap - 1 do
    if slot_used ~record_size page slot then incr n
  done;
  !n
