(** Deterministic fault injection for the disk layer.

    A fault plan is attached to a {!Disk.t} and consulted on every page
    read and write.  All decisions — which operation fails, how many bytes
    of a torn write reach the platter — derive from the seed and the
    operation counters, so a given (plan, workload) pair always fails the
    same way: a failing crash-consistency run can be replayed exactly.

    Fault kinds:
    - short reads and injected EIO surface as {!Tdb_error.Io};
    - torn writes persist a deterministic prefix of the page and succeed
      silently — detection is the page checksum's job;
    - [crash_at_write n] tears the [n]-th write and then kills the plan;
    - [crash_after_write n] completes the [n]-th write and then kills the
      plan (page-atomic crash: the model used by the crash-at-every-write
      consistency harness).

    Once dead, every subsequent operation raises {!Crashed}, simulating a
    process that no longer exists; the test harness catches it and reopens
    the files with recovery. *)

exception Crashed

type t

val create :
  ?seed:int ->
  ?crash_after_write:int ->
  ?crash_at_write:int ->
  ?torn_write_at:int ->
  ?eio_write_at:int ->
  ?eio_read_at:int ->
  ?short_read_at:int ->
  unit ->
  t
(** All positions are 1-based operation counts; [Invalid_argument] if < 1.
    A plan with no positions set is a pure operation counter (used to
    measure a workload's write count before replaying it under crashes). *)

val reads : t -> int
val writes : t -> int

val is_dead : t -> bool

val kill : t -> unit
(** Marks the plan dead immediately, as a crash would. *)

val on_read : t -> len:int -> [ `Ok | `Eio | `Short of int ]
(** Consulted before a read of [len] bytes.  [`Short n] means only [n]
    bytes (0 <= n < len) are available.  Raises {!Crashed} if dead. *)

val on_write : t -> len:int -> [ `Ok | `Eio | `Torn of int | `Crash of int | `Crash_after ]
(** Consulted before a write of [len] bytes.  [`Torn n] / [`Crash n] mean
    only the first [n] bytes (1 <= n < len) reach the disk; [`Crash n]
    and [`Crash_after] additionally kill the plan — the caller must raise
    {!Crashed} after persisting the prescribed bytes.  Raises {!Crashed}
    if already dead. *)
