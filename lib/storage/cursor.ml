(* Unified access-path cursors.

   Every access method (heap, hash, ISAM, the two-level store's history)
   is a source of page-sized record chunks; a cursor strings chunks into
   tuple batches of ~[target] records.  Batches are page-aligned — a chunk
   is never split across batches — so batching changes how records flow to
   the executor but never which pages are read, in what order, or how
   fence pruning is charged: all of that happens inside the chunk
   functions, which are the same {!Pfile} step primitives the eager
   iterators use. *)

module Value = Tdb_relation.Value

type batch = { tids : Tid.t array; records : bytes array }

let target = 64

type t = {
  next_chunk : unit -> (Tid.t * bytes) list option;
      (* one page's surviving records per pull ([] for a filtered-out or
         fence-skipped page); [None] once the source is exhausted *)
  mutable exhausted : bool;
}

let of_chunks next_chunk = { next_chunk; exhausted = false }
let empty = of_chunks (fun () -> None)

let next t =
  if t.exhausted then None
  else begin
    let chunks = ref [] in
    let n = ref 0 in
    let rec fill () =
      if !n < target then
        match t.next_chunk () with
        | None -> t.exhausted <- true
        | Some [] -> fill ()
        | Some recs ->
            chunks := recs :: !chunks;
            n := !n + List.length recs;
            fill ()
    in
    fill ();
    match List.concat (List.rev !chunks) with
    | [] -> None
    | (tid0, rec0) :: _ as items ->
        let tids = Array.make !n tid0 in
        let records = Array.make !n rec0 in
        List.iteri
          (fun i (tid, r) ->
            tids.(i) <- tid;
            records.(i) <- r)
          items;
        Some { tids; records }
  end

let iter t f =
  let rec go () =
    match next t with
    | None -> ()
    | Some b ->
        for i = 0 to Array.length b.tids - 1 do
          f b.tids.(i) b.records.(i)
        done;
        go ()
  in
  go ()

let fold t ~init f =
  let acc = ref init in
  iter t (fun tid r -> acc := f !acc tid r);
  !acc

let concat cursors =
  let remaining = ref cursors in
  let rec chunk () =
    match !remaining with
    | [] -> None
    | c :: rest -> (
        if c.exhausted then begin
          remaining := rest;
          chunk ()
        end
        else
          match c.next_chunk () with
          | Some _ as some -> some
          | None ->
              c.exhausted <- true;
              remaining := rest;
              chunk ())
  in
  of_chunks chunk

let filtered t ~keep =
  of_chunks (fun () ->
      match t.next_chunk () with
      | None ->
          t.exhausted <- true;
          None
      | Some recs -> Some (List.filter (fun (_, r) -> keep r) recs))

let apply_filter filter recs =
  match filter with
  | None -> recs
  | Some keep -> List.filter (fun (_, r) -> keep r) recs

let of_pages ?window ?filter pf ~pages =
  let pages = ref pages in
  of_chunks (fun () ->
      match !pages () with
      | Seq.Nil -> None
      | Seq.Cons (page, rest) ->
          pages := rest;
          Some (apply_filter filter (Pfile.page_step ?window pf ~page)))

let of_chains ?window ?filter pf ~heads =
  let heads = ref heads in
  (* (current page of the chain in progress, pages walked so far) *)
  let current = ref None in
  let rec chunk () =
    match !current with
    | Some (page, walked) ->
        let records, next = Pfile.chain_step ?window pf ~page in
        (match next with
        | Some n -> current := Some (n, walked + 1)
        | None ->
            Pfile.observe_chain_length walked;
            current := None);
        Some (apply_filter filter records)
    | None -> (
        match !heads () with
        | Seq.Nil -> None
        | Seq.Cons (head, rest) ->
            heads := rest;
            current := Some (head, 1);
            chunk ())
  in
  of_chunks chunk

(* What it takes to be an access path: open a batch cursor for a full
   scan, a key probe, or a key range, each under an optional temporal
   window that the shared layer (the chunk functions above) prunes on. *)
module type ACCESS_METHOD = sig
  type file

  val scan_cursor : ?window:Time_fence.window -> file -> t

  val lookup_cursor : ?window:Time_fence.window -> file -> Value.t -> t
  (** Records whose key equals the probe (everything, for a keyless
      file: the caller filters). *)

  val range_cursor :
    ?window:Time_fence.window ->
    file ->
    lo:Value.t option ->
    hi:Value.t option ->
    t
  (** Records with lo <= key <= hi on the bounded sides (everything, for
      a keyless file: the caller filters). *)
end
