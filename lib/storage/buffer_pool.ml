type frame = {
  mutable page_id : int;
  mutable data : bytes;
  mutable dirty : bool;
  mutable last_use : int;
}

type t = {
  disk : Disk.t;
  stats : Io_stats.t;
  mutable frames : frame array;
  mutable clock : int;
  resident : (int, frame) Hashtbl.t;
      (* page id -> frame, for every frame with page_id >= 0.  Keeps
         residency checks O(1) instead of O(frames); every page_id
         transition below updates it in the same step. *)
  mutable journal : (Journal.t * string) option;
      (* the write-ahead journal and this pool's file tag.  Attached only
         to a persistent relation's main pool; private partition pools
         and mem-backed pools leave it unset. *)
}

let make_frame () =
  { page_id = -1; data = Bytes.empty; dirty = false; last_use = 0 }

let create ?(frames = 1) disk stats =
  if frames < 1 then invalid_arg "Buffer_pool.create: frames must be >= 1";
  {
    disk;
    stats;
    frames = Array.init frames (fun _ -> make_frame ());
    clock = 0;
    resident = Hashtbl.create (max 16 (2 * frames));
    journal = None;
  }

let stats t = t.stats
let disk t = t.disk
let npages t = Disk.npages t.disk

(* A sealed, checksummed copy of the page's current logical content:
   the resident frame if there is one (it may be dirtier than the disk),
   the stored page otherwise.  This is what the journal captures as pre-
   and post-images. *)
let sealed_image t id =
  match Hashtbl.find_opt t.resident id with
  | Some f ->
      let img = Bytes.copy f.data in
      Page.seal ~epoch:(Disk.epoch t.disk) img;
      img
  | None -> Disk.read_page t.disk id

let attach_journal t j ~file =
  t.journal <- Some (j, file);
  Journal.register_file j ~file ~image:(sealed_image t)
    ~npages:(fun () -> Disk.npages t.disk)

let journal t = t.journal

let m_hits = Tdb_obs.Metric.counter "tdb_pool_hits_total"
let m_misses = Tdb_obs.Metric.counter "tdb_pool_misses_total"
let m_evictions = Tdb_obs.Metric.counter "tdb_pool_evictions_total"

let touch t f =
  t.clock <- t.clock + 1;
  f.last_use <- t.clock

let flush_frame ~on_evict t f =
  if f.page_id >= 0 && f.dirty then begin
    (* The write-ahead rule: the journal records covering this page (its
       pre-image, at least) must be durable before the page itself can
       reach the file — evictions out of a 1-frame pool hit this path
       mid-statement all the time. *)
    (match t.journal with
    | Some (j, _) -> Journal.ensure_durable j
    | None -> ());
    Disk.write_page t.disk f.page_id f.data;
    if on_evict then Io_stats.count_eviction_write t.stats
    else Io_stats.count_sync_write t.stats;
    f.dirty <- false
  end

let find_resident t id = Hashtbl.find_opt t.resident id

let unbind t f =
  if f.page_id >= 0 then Hashtbl.remove t.resident f.page_id

let victim t =
  (* Free frame if any, else least recently used. *)
  let best = ref t.frames.(0) in
  Array.iter
    (fun f ->
      if f.page_id < 0 && !best.page_id >= 0 then best := f
      else if f.page_id >= 0 && !best.page_id >= 0 && f.last_use < !best.last_use
      then best := f)
    t.frames;
  !best

let load t id =
  match find_resident t id with
  | Some f ->
      Tdb_obs.Metric.incr m_hits;
      touch t f;
      f
  | None ->
      Tdb_obs.Metric.incr m_misses;
      let f = victim t in
      if f.page_id >= 0 then Tdb_obs.Metric.incr m_evictions;
      flush_frame ~on_evict:true t f;
      (* Empty the frame before the read: if the disk raises (checksum
         failure, I/O error), the frame must not claim to hold page [id]
         with the evicted page's bytes still in it. *)
      unbind t f;
      f.page_id <- -1;
      f.data <- Bytes.empty;
      f.dirty <- false;
      let data = Disk.read_page t.disk id in
      Io_stats.count_read t.stats;
      f.page_id <- id;
      f.data <- data;
      Hashtbl.replace t.resident id f;
      touch t f;
      f

let allocate t =
  (match t.journal with
  | Some (j, file) when Journal.in_statement j -> Journal.note_extend j ~file
  | _ -> ());
  let id = Disk.allocate t.disk in
  (match t.journal with
  | Some (j, file) when Journal.in_statement j ->
      Journal.note_fresh_page j ~file ~page:id
  | _ -> ());
  let f = victim t in
  if f.page_id >= 0 then Tdb_obs.Metric.incr m_evictions;
  flush_frame ~on_evict:true t f;
  unbind t f;
  f.page_id <- id;
  f.data <- Page.create ();
  f.dirty <- true;
  Hashtbl.replace t.resident id f;
  touch t f;
  id

let read t id =
  let f = load t id in
  f.data

let modify t id fn =
  let f = load t id in
  (match t.journal with
  | Some (j, file) when Journal.in_statement j ->
      Journal.note_page_write j ~file ~page:id ~pre:(fun () ->
          let img = Bytes.copy f.data in
          Page.seal ~epoch:(Disk.epoch t.disk) img;
          img)
  | _ -> ());
  f.dirty <- true;
  fn f.data

let flush t = Array.iter (flush_frame ~on_evict:false t) t.frames

let sync t =
  flush t;
  Disk.fsync t.disk

let invalidate t =
  flush t;
  Hashtbl.reset t.resident;
  Array.iter
    (fun f ->
      f.page_id <- -1;
      f.data <- Bytes.empty;
      f.dirty <- false)
    t.frames

let resize t ~frames =
  if frames < 1 then invalid_arg "Buffer_pool.resize: frames must be >= 1";
  flush t;
  Hashtbl.reset t.resident;
  t.frames <- Array.init frames (fun _ -> make_frame ());
  t.clock <- 0
