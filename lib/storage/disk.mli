(** Page stores.

    Each relation lives in its own disk of {!Page.size}-byte pages addressed
    by dense integer ids.  Two backends: an in-memory store (used by the
    benchmark: the paper's metric is page {e accesses}, which the buffer
    pool counts identically for either backend) and a real file.

    Every write {e seals} the outgoing page image — stamps the disk's
    current epoch and a CRC-32 into the page trailer — and every read
    verifies the checksum, raising {!Tdb_error.Error} with class
    [Corruption] instead of serving a torn or bit-flipped page.  Both
    backends accept an optional {!Fault} plan that deterministically
    injects short reads, EIO, torn writes, and crashes. *)

type t

type recovery = {
  pages_scanned : int;
  tail_bytes_dropped : int;  (** unaligned trailing bytes truncated *)
  torn_pages_dropped : int;  (** checksum-failing tail pages truncated *)
  overflows_cleared : int;
      (** overflow pointers into the truncated region reset to none *)
  max_epoch : int;  (** newest epoch stamp seen on an intact page *)
}
(** What a recovery pass found and repaired. *)

val recovery_repaired : recovery -> bool
(** Whether the pass changed anything (false = the file was clean). *)

val pp_recovery : Format.formatter -> recovery -> unit

val create_mem : ?fault:Fault.t -> unit -> t

val open_file : ?fault:Fault.t -> ?recover:bool -> string -> t
(** Opens (or creates) a page file on disk with [O_CLOEXEC].

    Without [~recover] (the default), a file whose size is not a multiple
    of {!Page.size} raises {!Tdb_error.Error} with class [Corruption].
    With [~recover:true] the opener runs a recovery pass instead: the
    unaligned tail is truncated, every page's checksum is validated, a
    contiguous tail of torn pages is truncated, and overflow pointers left
    dangling by the truncation are cleared; the findings are available via
    {!recovery_report}.  A checksum failure that is {e not} a torn tail
    (an intact page follows it) still raises [Corruption]: that damage
    cannot be undone without a log.

    Raises {!Tdb_error.Error} with class [Io] if the file cannot be
    opened. *)

val recovery_report : t -> recovery option
(** The report of the recovery pass run at open, if one ran. *)

val npages : t -> int

val epoch : t -> int
(** The epoch stamped into pages on write.  After a recovery pass it is
    one past the newest epoch found in the file. *)

val set_epoch : t -> int -> unit
val bump_epoch : t -> unit
(** Checkpoint boundary: subsequent writes carry the next epoch. *)

val allocate : t -> int
(** Extends the store by one zeroed (sealed) page and returns its id. *)

val read_page : t -> int -> bytes
(** A fresh copy of the page.  Raises [Invalid_argument] on a bad id,
    {!Tdb_error.Error} ([Corruption]) on a checksum mismatch, and
    {!Tdb_error.Error} ([Io]) on short reads or I/O failure. *)

val write_page : t -> int -> bytes -> unit
(** Seals a copy of the page image (the caller's buffer is not modified)
    and writes it.  Raises like {!read_page}; under an active fault plan
    it may also raise {!Fault.Crashed}. *)

val truncate : t -> unit
(** Drops every page (used by [modify], which rebuilds a relation). *)

val fsync : t -> unit
(** Forces written pages to stable storage (no-op for the mem backend). *)

val close : t -> unit
val is_file_backed : t -> bool

val describe : t -> string
(** The backing path, or ["<mem>"]. *)
