(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest ?(pos = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - pos in
  update 0 buf ~pos ~len

let string s = digest (Bytes.unsafe_of_string s)
