(** CRC-32 (IEEE 802.3).  Used for page checksums; values fit in 32 bits
    and are always non-negative OCaml ints. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** [update crc buf ~pos ~len] extends a running checksum over a byte
    range.  Raises [Invalid_argument] if the range is out of bounds. *)

val digest : ?pos:int -> ?len:int -> bytes -> int
(** Checksum of a byte range (defaults: the whole buffer). *)

val string : string -> int
