(** The physical page format.

    Pages are {!size} (1024) bytes, matching the prototype.  The last
    {!trailer} (12) bytes are, in order: the page id of the next overflow
    page in the chain (4 bytes; 0 for none, stored ids offset by one), the
    write epoch (4 bytes), and a CRC-32 over everything before the
    checksum field (4 bytes).  The rest of the page is an array of
    fixed-size record slots, each prefixed by a 2-byte slot header (0 =
    free, 1 = used), giving a capacity of
    [(1024 - 12) / (record_size + 2)] records per page:

    - 9 static tuples of 108 bytes,
    - 8 rollback/historical tuples of 116 bytes,
    - 8 temporal tuples of 124 bytes,
    - 168 ISAM directory entries for 4-byte keys,
    - 101 secondary-index entries of 8 bytes (exactly the paper's count),

    in line with the paper's figures.

    The epoch and checksum are storage-layer fields: {!Disk} stamps them
    via {!seal} on every write and verifies via {!check} on every read, so
    code above the disk never sees a torn or bit-flipped page.  Overflow
    pointers remain the access methods' business. *)

val size : int
val trailer : int

val capacity : record_size:int -> int
(** Records per page.  Raises [Invalid_argument] if even one record does not
    fit. *)

val create : unit -> bytes
(** A zeroed page: all slots free, no overflow successor, unsealed. *)

val get_overflow : bytes -> int option
val set_overflow : bytes -> int option -> unit

val get_epoch : bytes -> int
(** The epoch stamped by the last {!seal} (0 on an unsealed page). *)

val seal : epoch:int -> bytes -> unit
(** Stamps the epoch and recomputes the trailing CRC-32 in place.  Must be
    the last mutation before the page goes to stable storage. *)

val check : bytes -> bool
(** Whether the stored checksum matches the page contents.  False for a
    torn, bit-flipped, or never-sealed page. *)

val slot_used : record_size:int -> bytes -> int -> bool
val read_record : record_size:int -> bytes -> int -> bytes
(** [read_record ~record_size page slot] copies the record out of the page.
    The slot must be in use. *)

val write_record : record_size:int -> bytes -> int -> bytes -> unit
(** Stores a record and marks the slot used. *)

val clear_slot : record_size:int -> bytes -> int -> unit

val find_free_slot : record_size:int -> bytes -> int option
val used_count : record_size:int -> bytes -> int
