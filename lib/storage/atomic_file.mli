(** Atomic small-file replacement for metadata (catalog, clock, fence
    sidecars).

    [write ~path content] writes the content to [path ^ ".tmp"], fsyncs it,
    renames it over [path], then fsyncs the directory.  A crash at any
    point leaves either the old file or the new one — never a partially
    written mixture, which is what the previous in-place writers risked.
    Raises {!Tdb_error.Io} on failure (the temp file is removed).

    [fault] threads the database's fault plan through both crash windows
    so the crash-at-every-write harness covers them: one write position
    for the temp-file body (a crash there leaves a partial [.tmp] and the
    old file intact) and one for the commit point between the temp-file
    fsync and the rename (a crash there leaves a complete [.tmp] and the
    old file still in place — the window this fault point was added to
    prove safe).  Torn decisions are treated as [`Ok]: the writer loops
    until every byte is written, so a short write only tears if the
    process also dies, which is the crash case. *)

val write : ?fault:Fault.t -> path:string -> string -> unit
