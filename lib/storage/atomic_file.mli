(** Atomic small-file replacement for metadata (catalog, clock).

    [write ~path content] writes [content] to [path ^ ".tmp"], fsyncs it,
    renames it over [path], then fsyncs the directory.  A crash at any
    point leaves either the old file or the new one — never a partially
    written mixture, which is what the previous in-place writers risked.
    Raises {!Tdb_error.Io} on failure (the temp file is removed). *)

val write : path:string -> content:string -> unit
