(** A per-relation buffer pool.

    The paper "allocated only 1 buffer for each user relation so that a page
    resides in main memory only until another page from the same relation is
    brought in"; that is the default here.  Larger pools use LRU
    replacement.

    A fetch that misses counts one read in the pool's {!Io_stats.t}; a dirty
    frame flushed counts one write — an {e eviction} write when forced out
    to make room, a {e sync} write on explicit {!flush}/{!sync}.  Newly
    allocated pages are born resident and dirty, so creating and filling a
    page costs one write, not a read.  Hits, misses and evictions also feed
    the [tdb_pool_*] observability counters. *)

type t

val create : ?frames:int -> Disk.t -> Io_stats.t -> t
(** [frames] defaults to 1 and must be positive. *)

val stats : t -> Io_stats.t

val disk : t -> Disk.t
(** The backing disk, so parallel scan partitions can open private pools
    over the same pages. *)

val npages : t -> int

val attach_journal : t -> Journal.t -> file:string -> unit
(** Routes this pool's writes through the write-ahead journal under the
    given file tag: {!modify} captures first-touch pre-images,
    {!allocate} records extents, and every dirty-frame flush first makes
    the journal durable.  Also registers the pool with the journal as
    the reader for the tag's post-images.  Attach only a persistent
    relation's main pool — never the private partition pools, which are
    read-only. *)

val journal : t -> (Journal.t * string) option

val allocate : t -> int
(** A fresh zeroed page, resident and dirty. *)

val read : t -> int -> bytes
(** The page's current contents (a frame; valid only until the next pool
    operation).  Callers must copy out what they need and must not mutate
    the result — use {!modify} for updates. *)

val modify : t -> int -> (bytes -> 'a) -> 'a
(** [modify t id f] applies [f] to the frame holding page [id] and marks it
    dirty (journalling a pre-image on the statement's first touch). *)

val sealed_image : t -> int -> bytes
(** A sealed, checksummed copy of the page's current logical content:
    the resident frame if any, else the stored page. *)

val flush : t -> unit
(** Writes back all dirty frames (counting writes) but keeps them resident. *)

val sync : t -> unit
(** {!flush}, then fsyncs the backing disk: the checkpoint primitive. *)

val invalidate : t -> unit
(** Flushes, then empties the pool (used after [modify]/rebuild). *)

val resize : t -> frames:int -> unit
(** Changes the pool size (flushes first). *)
