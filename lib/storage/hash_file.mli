(** Static hash files, after Ingres's [modify ... to hash].

    [modify] sizes the primary area as [ceil(n / (capacity * fillfactor))]
    buckets; each bucket is one primary page plus an overflow chain.
    Records hash on a key extracted by a caller-supplied function, so the
    same structure serves user relations (key = an attribute) and secondary
    indexes (key = the indexed value).

    All versions of a tuple share the same key, so chains "grow ever
    longer" with the update count — the central performance phenomenon the
    paper studies. *)

type t

val build :
  Buffer_pool.t ->
  record_size:int ->
  key_of:(bytes -> Tdb_relation.Value.t) ->
  fillfactor:int ->
  bytes list ->
  t
(** Builds over an empty disk.  [fillfactor] is a percentage in 1..100.
    With an empty record list one bucket is still allocated. *)

val attach :
  Buffer_pool.t ->
  record_size:int ->
  key_of:(bytes -> Tdb_relation.Value.t) ->
  fillfactor:int ->
  buckets:int ->
  t
(** Re-opens an existing hash file whose bucket count is known (from the
    catalog). *)

val buckets : t -> int
val fillfactor : t -> int
val pfile : t -> Pfile.t

val with_pool : t -> Buffer_pool.t -> t
(** A read-path clone over a different (typically private) buffer pool;
    the underlying pages are shared.  See {!Pfile.with_pool}. *)

val bucket_of : t -> Tdb_relation.Value.t -> int

val insert : t -> bytes -> Tid.t
val read : t -> Tid.t -> bytes
val update : t -> Tid.t -> bytes -> unit
val delete : t -> Tid.t -> unit

val lookup :
  ?window:Time_fence.window ->
  t ->
  Tdb_relation.Value.t ->
  (Tid.t -> bytes -> unit) ->
  unit
(** Hashed access: reads the key's full bucket chain and presents records
    whose key equals the probe (the conventional method cannot stop early —
    any page of the chain may hold a matching version).  With [?window],
    chain pages whose time fence cannot overlap the window are skipped. *)

val iter :
  ?window:Time_fence.window -> t -> (Tid.t -> bytes -> unit) -> unit
(** Sequential scan: every bucket chain; touches every page once (minus
    fence-skipped pages under [?window]). *)

val scan_cursor : ?window:Time_fence.window -> t -> Cursor.t
(** Batched sequential scan; {!iter} is this cursor, drained. *)

val lookup_cursor :
  ?window:Time_fence.window -> t -> Tdb_relation.Value.t -> Cursor.t
(** Batched hashed access; {!lookup} is this cursor, drained. *)

val range_cursor :
  ?window:Time_fence.window ->
  t ->
  lo:Tdb_relation.Value.t option ->
  hi:Tdb_relation.Value.t option ->
  Cursor.t
(** No order in a hash file: a full scan filtered to \[lo, hi\]. *)

val lookup_filter : t -> Tdb_relation.Value.t -> bytes -> bool
(** The record filter {!lookup_cursor} applies (key equality), for
    partitioned probes that must filter exactly as the sequential cursor
    does. *)

val range_filter :
  t -> lo:Tdb_relation.Value.t option -> hi:Tdb_relation.Value.t option ->
  bytes -> bool
(** The record filter {!range_cursor} applies (key within [\[lo, hi\]]). *)

module Access : Cursor.ACCESS_METHOD with type file = t

val npages : t -> int
val chain_pages : t -> Tdb_relation.Value.t -> int
(** Length (in pages) of the key's bucket chain. *)
