module Value = Tdb_relation.Value

type t = {
  pf : Pfile.t;
  key_of : bytes -> Value.t;
  buckets : int;
  fillfactor : int;
}

let check_fillfactor ff =
  if ff < 1 || ff > 100 then
    invalid_arg (Printf.sprintf "Hash_file: fillfactor %d not in 1..100" ff)

let primary_pages ~capacity ~fillfactor n =
  let target = max 1 (capacity * fillfactor / 100) in
  max 1 ((n + target - 1) / target)

let bucket_of t key = Value.hash key mod t.buckets

let insert t record =
  let head = bucket_of t (t.key_of record) in
  Pfile.chain_insert t.pf ~head record

let build pool ~record_size ~key_of ~fillfactor records =
  check_fillfactor fillfactor;
  let pf = Pfile.create pool ~record_size in
  if Pfile.npages pf <> 0 then invalid_arg "Hash_file.build: disk is not empty";
  let buckets =
    primary_pages ~capacity:(Pfile.capacity pf) ~fillfactor
      (List.length records)
  in
  for _ = 1 to buckets do
    ignore (Pfile.allocate_page pf)
  done;
  let t = { pf; key_of; buckets; fillfactor } in
  List.iter (fun r -> ignore (insert t r)) records;
  t

let attach pool ~record_size ~key_of ~fillfactor ~buckets =
  check_fillfactor fillfactor;
  if buckets < 1 then invalid_arg "Hash_file.attach: buckets must be >= 1";
  (* [build] materializes every primary bucket page up front, so a healthy
     stored hash file can never be shorter than its bucket count; one that
     is lost part of its primary area (e.g. to a torn-tail truncation). *)
  let npages = Buffer_pool.npages pool in
  if npages < buckets then
    Tdb_error.corruption
      "hash file has %d page(s) but needs %d primary bucket page(s); the \
       primary area was truncated"
      npages buckets;
  { pf = Pfile.create pool ~record_size; key_of; buckets; fillfactor }

let buckets t = t.buckets
let fillfactor t = t.fillfactor
let pfile t = t.pf

(* A read-path clone over a different buffer pool (see [Pfile.with_pool]). *)
let with_pool t pool = { t with pf = Pfile.with_pool t.pf pool }
let read t tid = Pfile.read_record t.pf tid
let update t tid record = Pfile.write_record t.pf tid record
let delete t tid = Pfile.clear_record t.pf tid

let scan_cursor ?window t =
  Cursor.of_chains ?window t.pf ~heads:(Seq.init t.buckets Fun.id)

let lookup_cursor ?window t key =
  (* Hashed access: the key's full bucket chain (any page may hold a
     matching version), filtered down to equal keys. *)
  Cursor.of_chains ?window t.pf
    ~heads:(Seq.return (bucket_of t key))
    ~filter:(fun record -> Value.equal (t.key_of record) key)

let range_cursor ?window t ~lo ~hi =
  (* No order in a hash file: filter a full scan. *)
  match (lo, hi) with
  | None, None -> scan_cursor ?window t
  | _ ->
      Cursor.of_chains ?window t.pf
        ~heads:(Seq.init t.buckets Fun.id)
        ~filter:(fun record ->
          let k = t.key_of record in
          (match lo with Some l -> Value.compare l k <= 0 | None -> true)
          && match hi with Some u -> Value.compare k u <= 0 | None -> true)

(* The record filters the probe cursors above apply, exposed so a
   partitioned probe (sub-runs of the bucket chain, or of the whole
   primary area for a range) filters records exactly as the sequential
   cursor does. *)

let lookup_filter t key record = Value.equal (t.key_of record) key

let range_filter t ~lo ~hi record =
  let k = t.key_of record in
  (match lo with Some l -> Value.compare l k <= 0 | None -> true)
  && match hi with Some u -> Value.compare k u <= 0 | None -> true

module Access = struct
  type file = t

  let scan_cursor = scan_cursor
  let lookup_cursor = lookup_cursor
  let range_cursor = range_cursor
end

let lookup ?window t key f = Cursor.iter (lookup_cursor ?window t key) f
let iter ?window t f = Cursor.iter (scan_cursor ?window t) f

let npages t = Pfile.npages t.pf

let chain_pages t key =
  Pfile.chain_length t.pf ~head:(bucket_of t key)
