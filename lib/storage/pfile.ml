module Imap = Map.Make (Int)

(* The fence and link tables are immutable maps held in mutable fields:
   writers replace the whole map when a page gains its first fence entry
   or an overflow link changes, and mutate existing fence values in place
   (fences only widen, field by field).  This is what makes the tables
   readable from concurrent snapshot-reader domains with no lock:

   - a map read is one mutable-field load of an immutable structure, so a
     reader always sees a coherent (if slightly stale) table — never a
     Hashtbl mid-resize;
   - staleness is conservative: a missing entry describes a page created
     after the reader's snapshot, whose records all post-date it, so
     skipping is exactly right; a widened fence only admits more pages;
   - in-place widening races at worst show a reader a per-field mix of
     old and new bounds, and every mix is at least as wide as the bounds
     published before its snapshot (each field moves monotonically), so
     no page holding a pre-snapshot record is ever skipped. *)
type fencing = {
  stamp : bytes -> Time_fence.stamp;
  mutable fences : Time_fence.t Imap.t;
      (* page -> fence over every record ever written there.  A missing
         entry means no record was written since fencing was enabled, i.e.
         the page is empty (callers must rebuild after attaching to a
         non-empty file), so it is skippable under any window. *)
  mutable links : int Imap.t;
      (* page -> overflow successor, mirrored from the page trailers so a
         skip-scan can follow a chain past a pruned page without reading
         it.  A missing entry means no successor. *)
}

type t = {
  pool : Buffer_pool.t;
  record_size : int;
  capacity : int;
  mutable first_fit : bool;
      (* First-fit reuses slack anywhere along the chain (Ingres behaviour,
         the source of Figure 8(b)'s jagged staircase at 50% loading);
         tail-append only ever fills the newest page. *)
  hints : (int, int) Hashtbl.t;
      (* head page -> first chain page that may have a free slot.  Valid
         because chains only grow and slots are freed rarely; a stale hint
         only costs extra probes, never correctness (we re-scan from the
         hint onward). *)
  mutable fencing : fencing option;
}

let m_overflow_pages =
  Tdb_obs.Metric.counter "tdb_storage_overflow_pages_total"

let h_chain_length =
  Tdb_obs.Metric.histogram "tdb_storage_chain_length_pages"

let create pool ~record_size =
  {
    pool;
    record_size;
    capacity = Page.capacity ~record_size;
    first_fit = true;
    hints = Hashtbl.create 64;
    fencing = None;
  }

let with_pool t pool =
  (* A read-path clone for parallel scan partitions: same record layout,
     same fencing tables (read-only during scans), but page I/O goes
     through [pool] — a private, privately-counted buffer pool — so no
     frame is shared across domains.  Fresh hints so the clone never
     aliases the insert path's mutable state. *)
  { t with pool; hints = Hashtbl.create 8 }

(* --- time fences --- *)

let enable_fences t ~stamp =
  t.fencing <- Some { stamp; fences = Imap.empty; links = Imap.empty }

let fences_enabled t = Option.is_some t.fencing

let fence_of t page =
  match t.fencing with
  | None -> None
  | Some fc -> Imap.find_opt page fc.fences

let set_fence t page fence =
  match t.fencing with
  | None -> ()
  | Some fc -> fc.fences <- Imap.add page fence fc.fences

let cached_link t page =
  match t.fencing with
  | None -> None
  | Some fc -> Imap.find_opt page fc.links

let set_cached_link t page next =
  match t.fencing with
  | None -> ()
  | Some fc -> (
      match next with
      | Some n -> fc.links <- Imap.add page n fc.links
      | None -> fc.links <- Imap.remove page fc.links)

let stamp_record (fc : fencing) page record =
  let fence =
    match Imap.find_opt page fc.fences with
    | Some f -> f
    | None ->
        let f = Time_fence.empty () in
        fc.fences <- Imap.add page f fc.fences;
        f
  in
  Time_fence.note fence (fc.stamp record)

(* Whether a fence-bounded walk may skip [page] without reading it.
   Missing fence = no record written = empty page = always skippable. *)
let skippable t window page =
  match (t.fencing, window) with
  | Some fc, Some w
    when Time_fence.pruning_enabled ()
         && not (Time_fence.window_is_unbounded w) ->
      Time_fence.note_check ();
      let admits =
        match Imap.find_opt page fc.fences with
        | Some f -> Time_fence.may_overlap f w
        | None -> false
      in
      not admits
  | _ -> false

let set_first_fit t v = t.first_fit <- v
let first_fit t = t.first_fit

let pool t = t.pool
let record_size t = t.record_size
let capacity t = t.capacity
let npages t = Buffer_pool.npages t.pool
let allocate_page t = Buffer_pool.allocate t.pool

let read_record t (tid : Tid.t) =
  let page = Buffer_pool.read t.pool tid.page in
  Page.read_record ~record_size:t.record_size page tid.slot

let record_exists t (tid : Tid.t) =
  let page = Buffer_pool.read t.pool tid.page in
  tid.slot < t.capacity && Page.slot_used ~record_size:t.record_size page tid.slot

let write_record t (tid : Tid.t) record =
  Buffer_pool.modify t.pool tid.page (fun page ->
      Page.write_record ~record_size:t.record_size page tid.slot record);
  (* Every record write widens the page fence; in-place updates keep the
     old rectangle too (fences never shrink), which is what makes them
     safe against any later read. *)
  match t.fencing with
  | Some fc -> stamp_record fc tid.page record
  | None -> ()

let clear_record t (tid : Tid.t) =
  Buffer_pool.modify t.pool tid.page (fun page ->
      Page.clear_slot ~record_size:t.record_size page tid.slot);
  (* A freed slot may sit before the first-fit hint of some chain; rather
     than track chain membership we just drop all hints. *)
  Hashtbl.reset t.hints

let next_overflow t page_id =
  Page.get_overflow (Buffer_pool.read t.pool page_id)

let set_next_overflow t page_id next =
  Buffer_pool.modify t.pool page_id (fun page -> Page.set_overflow page next);
  set_cached_link t page_id next

let chain_insert t ~head record =
  let start = match Hashtbl.find_opt t.hints head with
    | Some p -> p
    | None -> head
  in
  let rec go page_id =
    let try_here =
      if t.first_fit then true
      else
        (* tail-append: only the last page of the chain accepts records *)
        next_overflow t page_id = None
    in
    let free =
      if not try_here then None
      else
        let page = Buffer_pool.read t.pool page_id in
        Page.find_free_slot ~record_size:t.record_size page
    in
    match free with
    | Some slot ->
        let tid = { Tid.page = page_id; slot } in
        write_record t tid record;
        Hashtbl.replace t.hints head page_id;
        tid
    | None -> (
        match next_overflow t page_id with
        | Some next -> go next
        | None ->
            let fresh = allocate_page t in
            Tdb_obs.Metric.incr m_overflow_pages;
            set_next_overflow t page_id (Some fresh);
            let tid = { Tid.page = fresh; slot = 0 } in
            write_record t tid record;
            Hashtbl.replace t.hints head fresh;
            tid)
  in
  go start

(* Copy the used records of one page out of its frame: cursor batches (and
   the iterators below) hand records to callers that may perform pool
   operations evicting the frame, so nothing may alias it. *)
let page_records t ~page =
  let records = ref [] in
  let frame = Buffer_pool.read t.pool page in
  for slot = t.capacity - 1 downto 0 do
    if Page.slot_used ~record_size:t.record_size frame slot then
      records :=
        ({ Tid.page; slot },
         Page.read_record ~record_size:t.record_size frame slot)
        :: !records
  done;
  !records

let page_step ?window t ~page =
  if skippable t window page then begin
    Time_fence.note_skipped 1;
    []
  end
  else page_records t ~page

let chain_step ?window t ~page =
  if skippable t window page then begin
    Time_fence.note_skipped 1;
    ([], cached_link t page)
  end
  else begin
    (* Trailer first, records second: the same frame serves both (the
       second access is a pool hit), exactly like the eager walk always
       did, so page-I/O accounting is bit-identical under batching. *)
    let next = next_overflow t page in
    (page_records t ~page, next)
  end

let observe_chain_length pages =
  if Tdb_obs.Metric.enabled () then
    Tdb_obs.Metric.observe h_chain_length (float_of_int pages)

let page_iter ?window t ~page f =
  List.iter (fun (tid, r) -> f tid r) (page_step ?window t ~page)

let chain_iter ?window t ~head f =
  (* The page count observed here doubles as the chain-length sample: the
     walk happens anyway, so the histogram costs no extra I/O.  Pruned
     pages still count as chain length — the chain's shape is unchanged;
     we just follow the mirrored link instead of reading the trailer. *)
  let rec go pages page_id =
    let records, next = chain_step ?window t ~page:page_id in
    List.iter (fun (tid, r) -> f tid r) records;
    match next with Some n -> go (pages + 1) n | None -> pages
  in
  observe_chain_length (go 1 head)

let rebuild_page_fence t ~page =
  match t.fencing with
  | None -> ()
  | Some fc ->
      set_cached_link t page (next_overflow t page);
      page_iter t ~page (fun _tid record -> stamp_record fc page record)

let rebuild_chain_fences t ~head =
  let rec go page_id =
    rebuild_page_fence t ~page:page_id;
    match cached_link t page_id with Some n -> go n | None -> ()
  in
  if fences_enabled t then go head

let fence_entries t =
  match t.fencing with
  | None -> []
  | Some fc -> Imap.fold (fun page f acc -> (page, f) :: acc) fc.fences []

let link_entries t =
  match t.fencing with
  | None -> []
  | Some fc -> Imap.fold (fun page n acc -> (page, n) :: acc) fc.links []

let chain_pages t ~head =
  let rec go acc page_id =
    match next_overflow t page_id with
    | Some n -> go (page_id :: acc) n
    | None -> List.rev (page_id :: acc)
  in
  go [] head

(* The chain's page list from the mirrored links alone — no page I/O.
   Only meaningful with fencing on: the link table is complete then
   (every [set_next_overflow] mirrors, and rebuild/sidecar-load seed it),
   so a missing entry really means "no successor". *)
let cached_chain_pages t ~head =
  if not (fences_enabled t) then None
  else
    let rec go acc page_id =
      match cached_link t page_id with
      | Some n -> go (page_id :: acc) n
      | None -> List.rev (page_id :: acc)
    in
    Some (go [] head)

let chain_length t ~head = List.length (chain_pages t ~head)

let free_slots_on t ~page =
  let frame = Buffer_pool.read t.pool page in
  t.capacity - Page.used_count ~record_size:t.record_size frame

let drop_hints t = Hashtbl.reset t.hints
