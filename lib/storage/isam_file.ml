module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type

type level = { first_page : int; entry_count : int }

type t = {
  pf : Pfile.t;  (** data records *)
  dir : Pfile.t;  (** directory entries (encoded keys) over the same pool *)
  key_of : bytes -> Value.t;
  key_type : Attr_type.t;
  fillfactor : int;
  ndata : int;
  levels : level array;  (** \[0\] = leaf directory ... last = root *)
  first_keys : Value.t array;
      (** first build-time key of each data page (the leaf directory's
          contents, kept in memory to delimit duplicate runs) *)
  last_keys : Value.t array;
      (** last build-time key of each data page: a run of duplicates can
          spill across page boundaries, and lookups must notice that the
          page {e before} the located one may end with the probed key *)
}

let check_fillfactor ff =
  if ff < 1 || ff > 100 then
    invalid_arg (Printf.sprintf "Isam_file: fillfactor %d not in 1..100" ff)

let encode_key t key =
  let buf = Bytes.create (Attr_type.size t.key_type) in
  Value.encode t.key_type key buf 0;
  buf

let decode_key t buf = Value.decode t.key_type buf 0

let build pool ~record_size ~key_of ~key_type ~fillfactor records =
  check_fillfactor fillfactor;
  let pf = Pfile.create pool ~record_size in
  if Pfile.npages pf <> 0 then invalid_arg "Isam_file.build: disk is not empty";
  let dir = Pfile.create pool ~record_size:(Attr_type.size key_type) in
  let sorted =
    List.stable_sort (fun a b -> Value.compare (key_of a) (key_of b)) records
  in
  let per_page = max 1 (Pfile.capacity pf * fillfactor / 100) in
  (* Fill data pages. *)
  let first_keys = ref [] in
  let last_keys = ref [] in
  let count_on_page = ref per_page (* force a fresh page for the first record *) in
  let current_page = ref (-1) in
  List.iter
    (fun r ->
      if !count_on_page >= per_page then begin
        current_page := Pfile.allocate_page pf;
        count_on_page := 0;
        first_keys := key_of r :: !first_keys
      end
      else last_keys := List.tl !last_keys;
      last_keys := key_of r :: !last_keys;
      Pfile.write_record pf { Tid.page = !current_page; slot = !count_on_page } r;
      incr count_on_page)
    sorted;
  if !first_keys = [] then begin
    (* An empty relation still gets one data page so inserts have a home. *)
    ignore (Pfile.allocate_page pf);
    let zero =
      match key_type with
      | Attr_type.I1 | I2 | I4 -> Value.Int 0
      | F4 | F8 -> Value.Float 0.
      | C _ -> Value.Str ""
      | Time -> Value.Time (Tdb_time.Chronon.of_seconds 0)
    in
    first_keys := [ zero ];
    last_keys := [ zero ]
  end;
  let ndata = Pfile.npages pf in
  let t0 =
    {
      pf;
      dir;
      key_of;
      key_type;
      fillfactor;
      ndata;
      levels = [||];
      first_keys = Array.of_list (List.rev !first_keys);
      last_keys = Array.of_list (List.rev !last_keys);
    }
  in
  (* Build directory levels bottom-up until a level fits one page. *)
  let dir_cap = Pfile.capacity dir in
  let write_level keys =
    let first_page = ref None in
    let slot = ref dir_cap in
    let page = ref (-1) in
    List.iter
      (fun k ->
        if !slot >= dir_cap then begin
          page := Pfile.allocate_page dir;
          if !first_page = None then first_page := Some !page;
          slot := 0
        end;
        Pfile.write_record dir { Tid.page = !page; slot = !slot } (encode_key t0 k);
        incr slot)
      keys;
    match !first_page with
    | Some p -> { first_page = p; entry_count = List.length keys }
    | None -> assert false
  in
  let rec build_levels acc keys =
    let level = write_level keys in
    let npages_this = (level.entry_count + dir_cap - 1) / dir_cap in
    if npages_this <= 1 then List.rev (level :: acc)
    else begin
      (* First key of each page of this level feeds the level above. *)
      let rec firsts i ks =
        if i >= level.entry_count then List.rev ks
        else
          let k = List.nth keys i in
          firsts (i + dir_cap) (k :: ks)
      in
      build_levels (level :: acc) (firsts 0 [])
    end
  in
  let levels = Array.of_list (build_levels [] (List.rev !first_keys)) in
  { t0 with levels }

let attach pool ~record_size ~key_of ~key_type ~fillfactor ~ndata ~levels =
  check_fillfactor fillfactor;
  if ndata < 1 then invalid_arg "Isam_file.attach: ndata must be >= 1";
  (* The catalog's page accounting must fit inside the stored file: a file
     shorter than its primary area or directory extent lost pages (e.g. to
     a torn-tail truncation) and cannot be served. *)
  let npages = Buffer_pool.npages pool in
  let dir_cap = Page.capacity ~record_size:(Attr_type.size key_type) in
  let required =
    List.fold_left
      (fun acc (first_page, entry_count) ->
        max acc (first_page + ((entry_count + dir_cap - 1) / dir_cap)))
      ndata levels
  in
  if npages < required then
    Tdb_error.corruption
      "isam file has %d page(s) but its catalog metadata needs %d (data \
       pages + directory); the file was truncated"
      npages required;
  let pf = Pfile.create pool ~record_size in
  let dir = Pfile.create pool ~record_size:(Attr_type.size key_type) in
  let zero =
    match key_type with
    | Attr_type.I1 | I2 | I4 -> Value.Int 0
    | F4 | F8 -> Value.Float 0.
    | C _ -> Value.Str ""
    | Time -> Value.Time (Tdb_time.Chronon.of_seconds 0)
  in
  let first_keys = Array.make ndata zero in
  let last_keys = Array.make ndata zero in
  for page = 0 to ndata - 1 do
    let lo = ref None and hi = ref None in
    Pfile.page_iter pf ~page (fun _ record ->
        let k = key_of record in
        (match !lo with
        | Some l when Value.compare l k <= 0 -> ()
        | _ -> lo := Some k);
        match !hi with
        | Some h when Value.compare h k >= 0 -> ()
        | _ -> hi := Some k);
    first_keys.(page) <- Option.value !lo ~default:zero;
    last_keys.(page) <- Option.value !hi ~default:zero
  done;
  {
    pf;
    dir;
    key_of;
    key_type;
    fillfactor;
    ndata;
    levels =
      Array.of_list
        (List.map (fun (first_page, entry_count) -> { first_page; entry_count })
           levels);
    first_keys;
    last_keys;
  }

let levels t =
  Array.to_list (Array.map (fun l -> (l.first_page, l.entry_count)) t.levels)

let pfile t = t.pf

(* A read-path clone over a different buffer pool (see [Pfile.with_pool]).
   Both the data pfile {e and} the directory pfile rebind: a probe's
   directory descent performs page I/O too, and it must go through the
   clone's private frames. *)
let with_pool t pool =
  { t with pf = Pfile.with_pool t.pf pool; dir = Pfile.with_pool t.dir pool }

let fillfactor t = t.fillfactor
let data_pages t = t.ndata
let directory_height t = Array.length t.levels

let directory_pages t =
  let dir_cap = Pfile.capacity t.dir in
  Array.fold_left
    (fun acc l -> acc + ((l.entry_count + dir_cap - 1) / dir_cap))
    0 t.levels

(* Find the data page that should hold [key]: descend from the root, at
   each level reading the single page that covers the current child index
   and choosing the largest entry whose key is <= [key].  Then walk back
   over pages whose build-time contents may also hold [key] (a duplicate
   run spilling across page boundaries), so that inserts and lookups agree
   on the first candidate page. *)
let locate_data_page t key =
  let dir_cap = Pfile.capacity t.dir in
  let rec descend level child =
    if level < 0 then child
    else
      let l = t.levels.(level) in
      let page_index = child in
      let page_id = l.first_page + page_index in
      let base = page_index * dir_cap in
      let entries_here = min dir_cap (l.entry_count - base) in
      let chosen = ref 0 in
      for s = 0 to entries_here - 1 do
        let k = decode_key t (Pfile.read_record t.dir { Tid.page = page_id; slot = s }) in
        if Value.compare k key <= 0 then chosen := s
      done;
      descend (level - 1) (base + !chosen)
  in
  let located = descend (Array.length t.levels - 1) 0 in
  let rec back page =
    if page > 0 && Value.compare t.last_keys.(page - 1) key >= 0 then
      back (page - 1)
    else page
  in
  back located

let insert t record =
  let page = locate_data_page t (t.key_of record) in
  Pfile.chain_insert t.pf ~head:page record

let read t tid = Pfile.read_record t.pf tid
let update t tid record = Pfile.write_record t.pf tid record
let delete t tid = Pfile.clear_record t.pf tid

let scan_cursor ?window t =
  Cursor.of_chains ?window t.pf ~heads:(Seq.init t.ndata Fun.id)

let lookup_cursor ?window t key =
  (* ISAM access: directory descent (counted I/O, performed here so the
     cursor's first pull doesn't hide it), then forward through every
     data page whose build-time first key does not exceed the probe: a
     duplicate run can span several primary pages.  With unique keys
     this is just the one located page. *)
  let start = locate_data_page t key in
  let heads =
    Seq.unfold
      (fun page ->
        if page < t.ndata
           && (page = start || Value.compare t.first_keys.(page) key <= 0)
        then Some (page, page + 1)
        else None)
      start
  in
  Cursor.of_chains ?window t.pf ~heads
    ~filter:(fun record -> Value.equal (t.key_of record) key)

let range_cursor ?window t ~lo ~hi =
  let first = match lo with Some k -> locate_data_page t k | None -> 0 in
  let in_range k =
    (match lo with Some l -> Value.compare l k <= 0 | None -> true)
    && match hi with Some h -> Value.compare k h <= 0 | None -> true
  in
  (* A page whose build-time first key exceeds [hi] cannot hold in-range
     records: post-build inserts only ever land on the page the directory
     locates for their key, which for a key <= hi lies earlier.  Checking
     the in-memory bound avoids reading one page past the range. *)
  let page_may_qualify page =
    page = first
    ||
    match hi with
    | Some h -> Value.compare t.first_keys.(page) h <= 0
    | None -> true
  in
  let heads =
    Seq.unfold
      (fun page ->
        if page < t.ndata && page_may_qualify page then Some (page, page + 1)
        else None)
      first
  in
  Cursor.of_chains ?window t.pf ~heads
    ~filter:(fun record -> in_range (t.key_of record))

(* --- probe runs, for partition-parallel probes ---

   [lookup_cursor key] walks exactly the pages [range_cursor ~lo:(Some
   key) ~hi:(Some key)] walks, with the same filter (the unfold
   conditions coincide once lo = hi = key), so a single run abstraction
   covers both.  A run is the contiguous data-page interval [start, stop)
   the probe's heads come from; partitioning it into sub-runs of heads
   (each owning its overflow chain) is page-disjoint and order-preserving
   by construction. *)

let run_from t ~first ~hi =
  let qualifies page =
    page = first
    ||
    match hi with
    | Some h -> Value.compare t.first_keys.(page) h <= 0
    | None -> true
  in
  let stop = ref first in
  while !stop < t.ndata && qualifies !stop do
    incr stop
  done;
  (first, !stop)

let range_run t ~lo ~hi =
  let first = match lo with Some k -> locate_data_page t k | None -> 0 in
  run_from t ~first ~hi

(* [locate_data_page] without the directory I/O: the directory levels are
   built from (and never diverge from) the in-memory [first_keys], so the
   descent's result — the largest leaf entry <= key, then the duplicate
   back-walk — can be re-derived by binary search.  For sizing previews
   only; the real probe still pays the descent reads. *)
let locate_data_page_mem t key =
  let located =
    if Value.compare t.first_keys.(0) key > 0 then 0
    else begin
      let lo = ref 0 and hi = ref t.ndata in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if Value.compare t.first_keys.(mid) key <= 0 then lo := mid
        else hi := mid
      done;
      !lo
    end
  in
  let rec back page =
    if page > 0 && Value.compare t.last_keys.(page - 1) key >= 0 then
      back (page - 1)
    else page
  in
  back located

let range_run_mem t ~lo ~hi =
  let first = match lo with Some k -> locate_data_page_mem t k | None -> 0 in
  run_from t ~first ~hi

let range_filter t ~lo ~hi record =
  let k = t.key_of record in
  (match lo with Some l -> Value.compare l k <= 0 | None -> true)
  && match hi with Some h -> Value.compare k h <= 0 | None -> true

module Access = struct
  type file = t

  let scan_cursor = scan_cursor
  let lookup_cursor = lookup_cursor

  let range_cursor ?window t ~lo ~hi = range_cursor ?window t ~lo ~hi
end

let lookup ?window t key f = Cursor.iter (lookup_cursor ?window t key) f
let iter ?window t f = Cursor.iter (scan_cursor ?window t) f

let iter_range ?window t ?lo ?hi f =
  Cursor.iter (range_cursor ?window t ~lo ~hi) f

let npages t = Pfile.npages t.pf
