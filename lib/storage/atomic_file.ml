let fsync_dir dir =
  (* Persist the rename itself.  Directory fsync is not portable
     everywhere; failing to do it narrows durability, never safety. *)
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

(* One fault-plan consultation per crash window.  [`Torn] never fires
   here (see the .mli): a userland write loop retries short writes, so
   only a simultaneous crash can actually tear the file. *)
let fault_point fault ~len ~tear =
  match fault with
  | None -> ()
  | Some f -> (
      match Fault.on_write f ~len with
      | `Ok | `Torn _ -> ()
      | `Eio -> Tdb_error.io "injected EIO on write"
      | `Crash n ->
          tear n;
          raise Fault.Crashed
      | `Crash_after -> raise Fault.Crashed)

let write ?fault ~path content =
  let tmp = path ^ ".tmp" in
  (match
     Unix.openfile tmp
       [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
       0o644
   with
  | exception Unix.Unix_error (e, op, _) ->
      Tdb_error.io "%s: %s during %s" tmp (Unix.error_message e) op
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let buf = Bytes.unsafe_of_string content in
          let write_prefix len =
            let rec go off =
              if off < len then go (off + Unix.write fd buf off (len - off))
            in
            go 0
          in
          try
            (* crash window 1: the temp-file body.  A crash tears the
               temp file; the target is untouched either way. *)
            fault_point fault
              ~len:(max 1 (Bytes.length buf))
              ~tear:(fun n -> write_prefix (min n (Bytes.length buf)));
            write_prefix (Bytes.length buf);
            Unix.fsync fd
          with Unix.Unix_error (e, op, _) ->
            (try Sys.remove tmp with Sys_error _ -> ());
            Tdb_error.io "%s: %s during %s" tmp (Unix.error_message e) op));
  (* crash window 2: between the temp-file fsync and the rename.  A
     crash here leaves a complete .tmp behind and the old file in
     place — the reopened database must still see the old content. *)
  fault_point fault ~len:1 ~tear:(fun _ -> ());
  (try Unix.rename tmp path
   with Unix.Unix_error (e, op, _) ->
     (try Sys.remove tmp with Sys_error _ -> ());
     Tdb_error.io "rename %s -> %s: %s during %s" tmp path
       (Unix.error_message e) op);
  fsync_dir (Filename.dirname path)
