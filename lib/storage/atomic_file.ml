let fsync_dir dir =
  (* Persist the rename itself.  Directory fsync is not portable
     everywhere; failing to do it narrows durability, never safety. *)
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write ~path ~content =
  let tmp = path ^ ".tmp" in
  (match
     Unix.openfile tmp
       [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
       0o644
   with
  | exception Unix.Unix_error (e, op, _) ->
      Tdb_error.io "%s: %s during %s" tmp (Unix.error_message e) op
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let buf = Bytes.unsafe_of_string content in
          let rec go off =
            if off < Bytes.length buf then
              go (off + Unix.write fd buf off (Bytes.length buf - off))
          in
          (try
             go 0;
             Unix.fsync fd
           with Unix.Unix_error (e, op, _) ->
             (try Sys.remove tmp with Sys_error _ -> ());
             Tdb_error.io "%s: %s during %s" tmp (Unix.error_message e) op)));
  (try Unix.rename tmp path
   with Unix.Unix_error (e, op, _) ->
     (try Sys.remove tmp with Sys_error _ -> ());
     Tdb_error.io "rename %s -> %s: %s during %s" tmp path
       (Unix.error_message e) op);
  fsync_dir (Filename.dirname path)
