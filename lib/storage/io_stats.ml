(* A compatibility shim over [Tdb_obs.Metric] raw counters.

   The per-pool counters are raw (ungated): the paper's page-I/O numbers
   must stay exact whether or not observability is enabled.  Each count
   additionally feeds the registered global counters (gated, one branch
   when disabled) and charges the page to the current trace span. *)

module Metric = Tdb_obs.Metric
module Trace = Tdb_obs.Trace

type t = {
  r : Metric.counter;
  ev_w : Metric.counter;  (* writes forced by eviction *)
  sy_w : Metric.counter;  (* writes from explicit flush/sync *)
}

let global_reads = Metric.counter "tdb_io_page_reads_total"

let global_eviction_writes =
  Metric.counter ~labels:[ ("kind", "eviction") ] "tdb_io_page_writes_total"

let global_sync_writes =
  Metric.counter ~labels:[ ("kind", "sync") ] "tdb_io_page_writes_total"

let create () = { r = Metric.raw (); ev_w = Metric.raw (); sy_w = Metric.raw () }
let reads t = Metric.count t.r
let eviction_writes t = Metric.count t.ev_w
let sync_writes t = Metric.count t.sy_w
let writes t = eviction_writes t + sync_writes t
let total t = reads t + writes t

let count_read t =
  Metric.incr t.r;
  Metric.incr global_reads;
  Trace.note_read ()

let count_eviction_write t =
  Metric.incr t.ev_w;
  Metric.incr global_eviction_writes;
  Trace.note_write ()

let count_sync_write t =
  Metric.incr t.sy_w;
  Metric.incr global_sync_writes;
  Trace.note_write ()

(* Historical name; before the eviction/sync split every write went
   through here.  Kept for call sites that flush outside the pool. *)
let count_write = count_sync_write

(* Fold a worker partition's private stats into the owning pool's.  The
   worker already fed the registered global counters at count time (they
   are atomic), so only the raw per-pool counters are added here; trace
   attribution was a no-op on the worker domain, so by default the folded
   pages are charged to the current (main-domain) span now, keeping the
   profile tree summing to the query's page total.  A caller that builds
   its own per-partition child spans (the parallel scan path) passes
   ~trace:false to keep the pages from being double-counted. *)
let absorb ?(trace = true) ~into src =
  let r = reads src and ev = eviction_writes src and sy = sync_writes src in
  Metric.add into.r r;
  Metric.add into.ev_w ev;
  Metric.add into.sy_w sy;
  if trace then begin
    for _ = 1 to r do
      Trace.note_read ()
    done;
    for _ = 1 to ev + sy do
      Trace.note_write ()
    done
  end

let reset t =
  Metric.reset_counter t.r;
  Metric.reset_counter t.ev_w;
  Metric.reset_counter t.sy_w

type snapshot = { reads : int; writes : int }

let snapshot t = { reads = reads t; writes = writes t }
let map2 f a b = { reads = f a.reads b.reads; writes = f a.writes b.writes }
let diff ~before ~after = map2 (fun b a -> a - b) before after
let add = map2 ( + )
let zero = { reads = 0; writes = 0 }
let pp_snapshot ppf s = Fmt.pf ppf "%d reads, %d writes" s.reads s.writes
