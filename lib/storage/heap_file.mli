(** Heap files: unordered pages filled in order of insertion.

    Used for temporary relations created by one-variable detachment, for
    [create]d relations before any [modify], and as one structure choice for
    secondary indexes. *)

type t

val create : Buffer_pool.t -> record_size:int -> t
(** A new empty heap over an empty disk. *)

val attach : Buffer_pool.t -> record_size:int -> t
(** A view over a disk that already holds heap pages. *)

val pfile : t -> Pfile.t

val with_pool : t -> Buffer_pool.t -> t
(** A read-path clone of the file over a different (typically private)
    buffer pool; the underlying pages are shared.  See
    {!Pfile.with_pool}. *)

val insert : t -> bytes -> Tid.t
val read : t -> Tid.t -> bytes
val update : t -> Tid.t -> bytes -> unit
val delete : t -> Tid.t -> unit
val iter :
  ?window:Time_fence.window -> t -> (Tid.t -> bytes -> unit) -> unit
(** Sequential scan: every page, in order; with [?window], pages whose
    time fence cannot overlap the window are skipped without a read. *)

val scan_cursor : ?window:Time_fence.window -> t -> Cursor.t
(** Batched sequential scan; {!iter} is this cursor, drained. *)

val lookup_cursor : ?window:Time_fence.window -> t -> Tdb_relation.Value.t -> Cursor.t
val range_cursor :
  ?window:Time_fence.window ->
  t ->
  lo:Tdb_relation.Value.t option ->
  hi:Tdb_relation.Value.t option ->
  Cursor.t
(** Keyless: both present every record and the caller filters. *)

module Access : Cursor.ACCESS_METHOD with type file = t

val npages : t -> int
val record_count : t -> int
(** Counts by scanning (costs a scan's I/O). *)
