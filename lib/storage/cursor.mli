(** Unified access-path cursors: batched record delivery for every access
    method.

    A cursor pulls page-sized chunks from a {!Pfile} walk and accumulates
    them into batches of about {!target} records.  Batches are
    page-aligned — a page's records are never split across two batches —
    and the chunk functions are the same {!Pfile.page_step} /
    {!Pfile.chain_step} primitives the eager iterators use, so a cursor
    reads (and fence-skips) exactly the pages the equivalent eager walk
    would, in the same order.  Only tuple flow is batched; page I/O is
    invariant by construction. *)

type batch = { tids : Tid.t array; records : bytes array }
(** Parallel arrays; [records] are fresh copies, never page frames. *)

val target : int
(** Records per batch a cursor aims for (64).  Batches may run over —
    they end on the page boundary that reaches the target — or under, on
    the last batch of a walk. *)

type t

val next : t -> batch option
(** The next non-empty batch, or [None] once exhausted.  Pulling reads
    whole pages until the target is reached; every page read or skipped
    is accounted exactly as in the eager walk. *)

val iter : t -> (Tid.t -> bytes -> unit) -> unit
(** Drain the cursor, batch by batch. *)

val fold : t -> init:'a -> ('a -> Tid.t -> bytes -> 'a) -> 'a

val empty : t

val concat : t list -> t
(** Chains cursors end to end (still page-aligned; batches never span
    the seam's page boundaries beyond target accumulation). *)

val filtered : t -> keep:(bytes -> bool) -> t
(** A view of the cursor that drops records failing [keep] (page flow and
    accounting untouched). *)

val of_chunks : (unit -> (Tid.t * bytes) list option) -> t
(** Builds a cursor from a raw chunk source: one page's records per
    [Some] (possibly [[]]), [None] when exhausted.  For sources with
    bespoke traversal (the two-level store's history segments). *)

val of_pages :
  ?window:Time_fence.window ->
  ?filter:(bytes -> bool) ->
  Pfile.t ->
  pages:int Seq.t ->
  t
(** One chunk per page of [pages], via {!Pfile.page_step} (fence-skipped
    pages yield nothing and are charged to the prune counters).  [filter]
    drops records before they reach a batch (key-equality and range
    predicates of the keyed access methods). *)

val of_chains :
  ?window:Time_fence.window ->
  ?filter:(bytes -> bool) ->
  Pfile.t ->
  heads:int Seq.t ->
  t
(** One chunk per page of each overflow chain, via {!Pfile.chain_step};
    completed walks feed the chain-length histogram exactly like
    {!Pfile.chain_iter}.  [heads] is consumed lazily, so a head sequence
    may depend on state the walk updates. *)

(** The contract every access method implements (heap, hash, ISAM, and
    the two-level store): cursors for scan, key probe and key range,
    with the temporal window handled once in this shared layer. *)
module type ACCESS_METHOD = sig
  type file

  val scan_cursor : ?window:Time_fence.window -> file -> t

  val lookup_cursor :
    ?window:Time_fence.window -> file -> Tdb_relation.Value.t -> t
  (** Records whose key equals the probe (everything, for a keyless
      file: the caller filters). *)

  val range_cursor :
    ?window:Time_fence.window ->
    file ->
    lo:Tdb_relation.Value.t option ->
    hi:Tdb_relation.Value.t option ->
    t
  (** Records with lo <= key <= hi on the bounded sides (everything, for
      a keyless file: the caller filters). *)
end
