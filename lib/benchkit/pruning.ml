(* The pruning experiment: the paper's query set measured twice over the
   same evolving database — fences consulted vs ignored — at every update
   count.  Fences must never change a result, only the pages read, so each
   cell also records whether the two runs returned bit-identical tuples.

   The interesting rows are the rollback queries (Q03/Q04/Q11): their
   [as of] bound falls before the evolution epoch, so every page written
   by an update round carries a transaction-start fence above the bound
   and is skipped without being read.  Their measured cost stays near the
   UC-0 figure while the unfenced cost grows with the section-5.3 rate —
   the growth-rate ratio quantifies the reduction. *)

module Database = Tdb_core.Database
module Engine = Tdb_core.Engine
module Time_fence = Tdb_storage.Time_fence

type measurement = {
  cost_off : int;  (* input pages, fences ignored *)
  cost_on : int;  (* input pages, fences consulted *)
  skipped : int;  (* pages the fenced run skipped without reading *)
  identical : bool;  (* both runs returned the same tuples in order *)
}

type qseries = { qid : Paper_queries.id; cells : measurement array }

type t = {
  kind : Workload.kind;
  loading : int;
  max_uc : int;
  series : qseries list;
}

(* Q03, Q04 and Q11 bound transaction time strictly before the evolution
   epoch: the as-of-heavy section the fences exist for. *)
let as_of_queries = Paper_queries.[ Q03; Q04; Q11 ]

let run_query db src =
  Database.reset_io db;
  match Engine.execute db src with
  | Ok [ Engine.Rows { io; tuples; _ } ] ->
      (io.Tdb_query.Executor.input_reads, tuples)
  | Ok _ ->
      Tdb_error.internal "pruning: expected a single retrieve: %s"
        src
  | Error e -> Tdb_error.internal "pruning query failed: %s" e

let measure (w : Workload.t) src =
  let cost_off, rows_off =
    Time_fence.with_pruning false (fun () -> run_query w.Workload.db src)
  in
  Time_fence.reset_pages_skipped ();
  let cost_on, rows_on =
    Time_fence.with_pruning true (fun () -> run_query w.Workload.db src)
  in
  let skipped = Time_fence.pages_skipped () in
  { cost_off; cost_on; skipped; identical = rows_off = rows_on }

let run ?(scale = 1) ~kind ~loading ~seed ~max_uc () =
  let w = Workload.build ~scale ~kind ~loading ~seed () in
  let texted =
    List.filter_map
      (fun qid ->
        Option.map (fun src -> (qid, src)) (Paper_queries.text qid kind))
      Paper_queries.all
  in
  let blank = { cost_off = 0; cost_on = 0; skipped = 0; identical = true } in
  let series =
    List.map (fun (qid, _) -> (qid, Array.make (max_uc + 1) blank)) texted
  in
  let measure_all uc =
    List.iter2
      (fun (_, src) (_, cells) -> cells.(uc) <- measure w src)
      texted series
  in
  measure_all 0;
  for uc = 1 to max_uc do
    Evolve.uniform_round w ~round:uc;
    measure_all uc
  done;
  {
    kind;
    loading;
    max_uc;
    series = List.map (fun (qid, cells) -> { qid; cells }) series;
  }

(* Measured page-I/O slope over the whole evolution, per the section-5.3
   decomposition: (cost(n) - cost(0)) / n. *)
let growth t (s : qseries) ~on =
  let pick m = if on then m.cost_on else m.cost_off in
  float_of_int (pick s.cells.(t.max_uc) - pick s.cells.(0))
  /. float_of_int (max 1 t.max_uc)

(* Fenced slope over unfenced slope; [None] when the unfenced cost does
   not grow, so there is nothing to reduce. *)
let ratio t (s : qseries) =
  let off = growth t s ~on:false in
  if off <= 0. then None else Some (growth t s ~on:true /. off)

let all_identical t =
  List.for_all
    (fun s -> Array.for_all (fun m -> m.identical) s.cells)
    t.series

let is_as_of (s : qseries) = List.mem s.qid as_of_queries

let as_of_skipped t =
  List.fold_left
    (fun acc s -> if is_as_of s then acc + s.cells.(t.max_uc).skipped else acc)
    0 t.series

let worst_as_of_ratio t =
  List.fold_left
    (fun acc s ->
      if not (is_as_of s) then acc
      else
        match (ratio t s, acc) with
        | None, acc -> acc
        | Some r, None -> Some r
        | Some r, Some w -> Some (Float.max r w))
    None t.series

let table t =
  let n = t.max_uc in
  let header =
    [
      "Query"; "off/0"; Printf.sprintf "off/%d" n; Printf.sprintf "on/%d" n;
      Printf.sprintf "skip/%d" n; "g.off"; "g.on"; "ratio"; "same";
    ]
  in
  let rows =
    List.map
      (fun s ->
        [
          Paper_queries.name s.qid;
          string_of_int s.cells.(0).cost_off;
          string_of_int s.cells.(n).cost_off;
          string_of_int s.cells.(n).cost_on;
          string_of_int s.cells.(n).skipped;
          Report.centi (growth t s ~on:false);
          Report.centi (growth t s ~on:true);
          (match ratio t s with Some r -> Report.centi r | None -> "-");
          (if Array.for_all (fun m -> m.identical) s.cells then "yes"
           else "NO");
        ])
      t.series
  in
  Report.table ~header rows
