(* The one schema every metrics dump in the system uses.

   Both serializers of engine metrics — the CLI's [\metrics json] and the
   bench's result document — route through [metrics] here, so they cannot
   drift apart: a dump is a JSON list of {name; labels; value} objects,
   names are non-empty strings, labels map strings to strings, values are
   numbers.  [validate] is the executable statement of that schema; the
   bench comparator applies it to documents read back from disk. *)

module Json = Tdb_obs.Json
module Metric = Tdb_obs.Metric

let validate_record i = function
  | Json.Obj [ ("name", name); ("labels", labels); ("value", value) ] -> (
      (match name with
      | Json.Str n when n <> "" -> Ok ()
      | Json.Str _ -> Error (Printf.sprintf "metric %d: empty name" i)
      | _ -> Error (Printf.sprintf "metric %d: name is not a string" i))
      |> fun r ->
      Result.bind r (fun () ->
          match labels with
          | Json.Obj ls ->
              if
                List.for_all
                  (function _, Json.Str _ -> true | _ -> false)
                  ls
              then Ok ()
              else
                Error
                  (Printf.sprintf "metric %d: non-string label value" i)
          | _ -> Error (Printf.sprintf "metric %d: labels is not an object" i))
      |> fun r ->
      Result.bind r (fun () ->
          match value with
          | Json.Num _ -> Ok ()
          | _ -> Error (Printf.sprintf "metric %d: value is not a number" i)))
  | Json.Obj _ ->
      Error
        (Printf.sprintf
           "metric %d: expected exactly the fields name, labels, value" i)
  | _ -> Error (Printf.sprintf "metric %d: not an object" i)

let validate = function
  | Json.List records ->
      let rec go i = function
        | [] -> Ok ()
        | r :: rest -> Result.bind (validate_record i r) (fun () -> go (i + 1) rest)
      in
      go 0 records
  | _ -> Error "metrics dump is not a list"

let metrics () =
  let j = Metric.to_json () in
  match validate j with
  | Ok () -> j
  | Error e -> Tdb_error.internal "metrics dump violates its own schema: %s" e

(* The statement-log line schema (lib/obs/statement_log): every line is
   an object with an id and timestamp, then either a statement body or a
   free-form notice.  Statement bodies carry the session/epoch
   attribution fields (null when the statement ran outside a session). *)
let validate_statement_record j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj fields ->
      let field name = List.assoc_opt name fields in
      let str name =
        match field name with
        | Some (Json.Str _) -> Ok ()
        | _ -> Error (Printf.sprintf "%s: expected a string" name)
      in
      let num name =
        match field name with
        | Some (Json.Num _) -> Ok ()
        | _ -> Error (Printf.sprintf "%s: expected a number" name)
      in
      let opt_str name =
        match field name with
        | Some (Json.Str _ | Json.Null) -> Ok ()
        | _ -> Error (Printf.sprintf "%s: expected a string or null" name)
      in
      let opt_num name =
        match field name with
        | Some (Json.Num _ | Json.Null) -> Ok ()
        | _ -> Error (Printf.sprintf "%s: expected a number or null" name)
      in
      let* () = str "id" in
      let* () = num "ts" in
      (match field "record" with
      | Some (Json.Str "statement") ->
          let* () = str "kind" in
          let* () = str "text" in
          let* () = str "outcome" in
          let* () = opt_str "error" in
          let* () = opt_num "rows" in
          let* () = num "latency_s" in
          let* () = num "reads" in
          let* () = num "writes" in
          let* () = num "journal_bytes" in
          let* () = opt_str "session" in
          opt_num "epoch"
      | Some (Json.Str "notice") -> str "notice"
      | _ -> Error {|record: expected "statement" or "notice"|})
  | _ -> Error "statement-log record is not an object"
