module Schema = Tdb_relation.Schema
module Attr_type = Tdb_relation.Attr_type
module Value = Tdb_relation.Value
module Db_type = Tdb_relation.Db_type
module Relation_file = Tdb_storage.Relation_file
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock
module Database = Tdb_core.Database

type kind = Static | Rollback | Historical | Temporal

let kind_to_string = function
  | Static -> "static"
  | Rollback -> "rollback"
  | Historical -> "historical"
  | Temporal -> "temporal"

let db_type_of_kind = function
  | Static -> Db_type.Static
  | Rollback -> Db_type.Rollback
  | Historical -> Db_type.Historical Db_type.Interval
  | Temporal -> Db_type.Temporal Db_type.Interval

type t = {
  db : Database.t;
  kind : kind;
  loading : int;
  scale : int;
  h_name : string;
  i_name : string;
}

let n_tuples = 1024
let hot_h_id = 700 (* carries amount 69400 for Q07 *)
let hot_i_id = 73 (* carries amount 73700 for Q08/Q12 *)
let hot_h_amount = 69400
let hot_i_amount = 73700

let schema_for kind =
  Schema.create_exn
    ~db_type:(db_type_of_kind kind)
    [
      { Schema.name = "id"; ty = Attr_type.I4 };
      { Schema.name = "amount"; ty = Attr_type.I4 };
      { Schema.name = "seq"; ty = Attr_type.I4 };
      { Schema.name = "string"; ty = Attr_type.C 96 };
    ]

let init_window_start = Chronon.parse_exn "1/1/80"
let init_window_end = Chronon.parse_exn "2/15/80"
let evolution_base = Chronon.parse_exn "3/1/80"

let random_stamp rng =
  let span =
    Chronon.to_seconds init_window_end - Chronon.to_seconds init_window_start
  in
  Chronon.add_seconds init_window_start (Random.State.int rng span)

let random_string rng =
  String.init 96 (fun _ -> Char.chr (97 + Random.State.int rng 26))

let random_amount rng =
  (* Avoid colliding with the two probe values Q07/Q08 select on. *)
  let rec draw () =
    let a = Random.State.int rng 100000 in
    if a = hot_h_amount || a = hot_i_amount then draw () else a
  in
  draw ()

let tuples_for ?(scale = 1) ~kind ~seed ~which schema =
  if scale < 1 then invalid_arg "Workload.tuples_for: scale must be >= 1";
  let rng =
    Random.State.make [| seed; (match which with `H -> 17; | `I -> 23) |]
  in
  (* Scaling multiplies the paper's row count; ids stay dense from 0, so
     every scale includes the scale-1 ids (the hot probe tuples keep
     their identity and stay unique at any scale). *)
  List.init (n_tuples * scale) (fun id ->
      let amount =
        match which with
        | `H when id = hot_h_id -> hot_h_amount
        | `I when id = hot_i_id -> hot_i_amount
        | _ -> random_amount rng
      in
      let stamp = random_stamp rng in
      let user =
        [
          Value.Int id; Value.Int amount; Value.Int 0;
          Value.Str (random_string rng);
        ]
      in
      let time_attrs =
        match kind with
        | Static -> []
        | Rollback | Historical -> [ Value.Time stamp; Value.Time Chronon.forever ]
        | Temporal ->
            [
              Value.Time stamp; Value.Time Chronon.forever;
              Value.Time stamp; Value.Time Chronon.forever;
            ]
      in
      let tuple = Array.of_list (user @ time_attrs) in
      assert (Array.length tuple = Schema.arity schema);
      tuple)

let build ?(scale = 1) ~kind ~loading ~seed () =
  if scale < 1 then invalid_arg "Workload.build: scale must be >= 1";
  let db =
    match Database.create ~start:evolution_base () with
    | Ok db -> db
    | Error e -> Tdb_error.internal "workload setup: %s" e
  in
  let prefix = kind_to_string kind in
  let h_name = prefix ^ "_h" and i_name = prefix ^ "_i" in
  let schema = schema_for kind in
  let load name which org =
    let rel =
      match Database.create_relation db ~name schema with
      | Ok rel -> rel
      | Error e -> Tdb_error.internal "workload setup: %s" e
    in
    List.iter
      (fun tu -> ignore (Relation_file.insert rel tu))
      (tuples_for ~scale ~kind ~seed ~which schema);
    match Database.modify_relation db name org with
    | Ok () -> ()
    | Error e -> Tdb_error.internal "workload setup: %s" e
  in
  load h_name `H (Relation_file.Hash { key_attr = 0; fillfactor = loading });
  load i_name `I (Relation_file.Isam { key_attr = 0; fillfactor = loading });
  (match Database.set_range db ~var:"h" ~rel:h_name with
  | Ok () -> ()
  | Error e -> Tdb_error.internal "workload setup: %s" e);
  (match Database.set_range db ~var:"i" ~rel:i_name with
  | Ok () -> ()
  | Error e -> Tdb_error.internal "workload setup: %s" e);
  Clock.set (Database.clock db) evolution_base;
  { db; kind; loading; scale; h_name; i_name }

let h_rel t = Option.get (Database.find_relation t.db t.h_name)
let i_rel t = Option.get (Database.find_relation t.db t.i_name)
