module Database = Tdb_core.Database
module Engine = Tdb_core.Engine
module Relation_file = Tdb_storage.Relation_file
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let run db src =
  match Engine.execute db src with
  | Ok outcomes -> outcomes
  | Error e ->
      Tdb_error.internal "benchmark statement failed: %s\n%s" e src

let uniform_round (w : Workload.t) ~round =
  let at = Chronon.add_seconds Workload.evolution_base (round * 86400) in
  Clock.set (Database.clock w.Workload.db) at;
  ignore (run w.Workload.db "replace h (seq = h.seq + 1)");
  ignore (run w.Workload.db "replace i (seq = i.seq + 1)")

let non_uniform_round (w : Workload.t) ~round ~key =
  let at = Chronon.add_seconds Workload.evolution_base (round * 86400) in
  Clock.set (Database.clock w.Workload.db) at;
  let stmt = Printf.sprintf "replace h (seq = h.seq + 1) where h.id = %d" key in
  for _ = 1 to 1024 do
    ignore (run w.Workload.db stmt)
  done

let hashed_access_cost (w : Workload.t) ~key =
  let rel = Workload.h_rel w in
  Tdb_storage.Buffer_pool.invalidate (Relation_file.pool rel);
  Tdb_storage.Io_stats.reset (Relation_file.stats rel);
  Relation_file.lookup rel (Tdb_relation.Value.Int key) (fun _ _ -> ());
  Tdb_storage.Io_stats.reads (Relation_file.stats rel)

let measure_query_result (w : Workload.t) src =
  Database.reset_io w.Workload.db;
  match run w.Workload.db src with
  | [ Engine.Rows { io; tuples; _ } ] ->
      (io.Tdb_query.Executor.input_reads, List.length tuples)
  | _ -> Tdb_error.internal "expected a single retrieve: %s" src

let measure_query w src = fst (measure_query_result w src)

let sizes (w : Workload.t) =
  ( Relation_file.npages (Workload.h_rel w),
    Relation_file.npages (Workload.i_rel w) )
