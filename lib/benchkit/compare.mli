(** The bench trend/regression harness: diff two bench result documents
    (BENCH_N.json files).

    Hard gates — a changed cost-grid cell between comparable runs, rows
    diverging under pruning/parallelism/journalling, journal overhead
    past the sync-per-statement ceiling, a missed parallel speedup floor
    on a machine with >= 4 recommended domains, a metrics dump violating
    the shared schema — are {e failures}.  Relative drift in wall times,
    throughput or overheads beyond the noise [tolerance] (default 50%)
    only {e warns}: clocks differ across machines, page counts must not.

    Grid equality is only asserted when the two runs are comparable
    (same seed, update-count range and smoke flag); otherwise the report
    notes the skip. *)

type outcome = {
  failures : string list;  (** hard regressions; non-empty fails [run] *)
  warnings : string list;  (** drift beyond the tolerance *)
  report : string;  (** the full human-readable comparison ledger *)
}

val compare_docs :
  ?tolerance:float ->
  old_label:string ->
  new_label:string ->
  Tdb_obs.Json.t ->
  Tdb_obs.Json.t ->
  outcome
(** Diff two parsed bench documents, old then new. *)

val compare_files :
  ?tolerance:float ->
  old_path:string ->
  new_path:string ->
  unit ->
  (outcome, string) result
(** [compare_docs] on two files; [Error] for unreadable/unparsable
    input. *)

val run :
  ?tolerance:float -> old_path:string -> new_path:string -> unit -> int
(** CLI driver: print the report to stdout and return the exit code —
    0 clean, 1 with failures, 2 when a document cannot be read. *)
