(** The paper's test databases (section 5.1).

    Each database holds two relations, [<type>_h] (hashed on [id]) and
    [<type>_i] (ISAM on [id]), 1024 tuples of 108 data bytes each:
    [id] (i4, the key, 0..1023), [amount] (i4, random), [seq] (i4, zero),
    [string] (c96, random).  Transaction-start and valid-from stamps are
    drawn uniformly between 1980-01-01 and 1980-02-15; stop stamps are
    "forever".  One [h] tuple carries [amount = 69400] and one [i] tuple
    [amount = 73700] so that Q07/Q08/Q12 select exactly one tuple, as in
    Figure 4.  Everything is driven by a seeded deterministic PRNG. *)

type kind = Static | Rollback | Historical | Temporal

val kind_to_string : kind -> string
val db_type_of_kind : kind -> Tdb_relation.Db_type.t

type t = {
  db : Tdb_core.Database.t;
  kind : kind;
  loading : int;  (** fillfactor percentage: 100 or 50 *)
  scale : int;  (** row-count multiplier over the paper's 1024 *)
  h_name : string;
  i_name : string;
}

val build : ?scale:int -> kind:kind -> loading:int -> seed:int -> unit -> t
(** Builds and loads the database, organizes the files, declares the ranges
    [h] and [i], and leaves the clock at 1980-03-01 (after every initial
    stamp).  [scale] (default 1) multiplies the paper's 1024-row count:
    ids stay dense from 0, so every scale is a superset of scale 1 and
    the hot probe tuples keep their identity.  Raises [Invalid_argument]
    when [scale < 1]. *)

val h_rel : t -> Tdb_storage.Relation_file.t
val i_rel : t -> Tdb_storage.Relation_file.t

val tuples_for :
  ?scale:int ->
  kind:kind ->
  seed:int ->
  which:[ `H | `I ] ->
  Tdb_relation.Schema.t ->
  Tdb_relation.Tuple.t list
(** The raw initial tuples (used to feed alternative stores the same
    data).  [scale] as in {!build}. *)

val n_tuples : int
(** The paper's row count (1024) at scale 1; a scaled workload holds
    [n_tuples * scale] rows with ids dense from 0. *)

val schema_for : kind -> Tdb_relation.Schema.t

val evolution_base : Tdb_time.Chronon.t
(** 1980-03-01: where the clock stands after loading; update rounds happen
    at daily offsets from here. *)

val hot_h_amount : int
(** The amount value Q07 selects (69400, on tuple id 700 of [h]). *)

val hot_i_amount : int
(** The amount value Q08/Q12 select (73700, on tuple id 73 of [i]). *)
