(** The shared schema for engine-metric dumps.

    Every serializer of [Tdb_obs.Metric] state — the CLI's
    [\metrics json] and the bench result document — goes through
    {!metrics}, so there is exactly one wire format: a JSON list of
    [{name; labels; value}] objects with string names, string-to-string
    labels and numeric values. *)

val validate : Tdb_obs.Json.t -> (unit, string) result
(** Check a dump (freshly built or parsed back from disk) against the
    schema; the error pinpoints the first offending record. *)

val metrics : unit -> Tdb_obs.Json.t
(** [Metric.to_json ()], validated.  Raises [Tdb_error.Error Internal]
    if the dump ever stops matching its own schema. *)

val validate_statement_record : Tdb_obs.Json.t -> (unit, string) result
(** Check one parsed statement-log line (see [Tdb_obs.Statement_log])
    against its schema: id and timestamp, then a statement body —
    including the nullable [session] and [epoch] attribution fields —
    or a notice. *)
