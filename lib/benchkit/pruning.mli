(** The pruning experiment: Q01–Q12 measured fences-on vs fences-off over
    the same evolving database.

    Time fences are conservative, so the fenced run may only skip pages
    that cannot contribute — every cell therefore also checks that both
    runs returned bit-identical tuples.  The headline number is the
    growth-rate ratio on the rollback queries ({!as_of_queries}): their
    [as of] bound precedes the evolution epoch, so fences hold their cost
    near the UC-0 figure while the unfenced cost grows at the paper's
    section-5.3 rate. *)

type measurement = {
  cost_off : int;  (** input pages, fences ignored *)
  cost_on : int;  (** input pages, fences consulted *)
  skipped : int;  (** pages the fenced run skipped without reading *)
  identical : bool;  (** both runs returned the same tuples, in order *)
}

type qseries = { qid : Paper_queries.id; cells : measurement array }
(** One query's measurements; [cells.(uc)] is the cell at that update
    count, [0 .. max_uc]. *)

type t = {
  kind : Workload.kind;
  loading : int;
  max_uc : int;
  series : qseries list;
}

val as_of_queries : Paper_queries.id list
(** Q03, Q04 and Q11 — the queries whose [as of] bound falls before the
    evolution epoch, where pruning must bite. *)

val run :
  ?scale:int ->
  kind:Workload.kind ->
  loading:int ->
  seed:int ->
  max_uc:int ->
  unit ->
  t
(** Build a fresh workload and measure every applicable query twice (via
    {!Tdb_storage.Time_fence.with_pruning}) at each update count,
    evolving one uniform round between counts.  The global pruning switch
    is restored afterwards. *)

val growth : t -> qseries -> on:bool -> float
(** Measured page-I/O slope [(cost(max_uc) - cost(0)) / max_uc] for the
    fenced ([on:true]) or unfenced run. *)

val ratio : t -> qseries -> float option
(** Fenced slope over unfenced slope; [None] when the unfenced cost does
    not grow.  [< 1.0] means fences reduced the growth rate. *)

val all_identical : t -> bool
(** Every query at every update count returned the same tuples with
    fences on and off — the experiment's correctness gate. *)

val as_of_skipped : t -> int
(** Pages skipped at [max_uc] summed over {!as_of_queries}. *)

val worst_as_of_ratio : t -> float option
(** The largest defined {!ratio} over {!as_of_queries} — the weakest
    growth-rate reduction on the section pruning exists for. *)

val table : t -> string
(** A bordered report table: costs at UC 0 and [max_uc], pages skipped,
    slopes, ratio and the identity check, one row per query. *)
