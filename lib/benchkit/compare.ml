(* The bench trend/regression harness: diff two bench result documents.

   The committed BENCH_N.json snapshots are the repo's reproduction of
   the paper's tables; this module is the check that a revision did not
   silently move them.  Three classes of signal come out of a diff:

   - {b failures} — hard gates: a cost-grid cell changed between two
     comparable runs (same update counts and seed), a query's rows
     diverged under pruning/parallelism/journalling, the journal costs
     more than naive sync-per-statement durability, or the parallel
     speedup floor is missed on a machine with cores to spend.  These
     are exactly the invariants CI used to re-assert with ad-hoc inline
     scripts; a failure makes [run] exit non-zero.
   - {b warnings} — drift beyond the noise tolerance: a section's wall
     time, a query's throughput or the journal overhead moved by more
     than [tolerance] (relative).  Wall clocks differ across machines,
     so drift never fails the comparison on its own.
   - {b info} — the full ledger, printed so the uploaded report shows
     what was compared and what was skipped (e.g. the grid when one run
     is a smoke run and the other is not). *)

module Json = Tdb_obs.Json

type outcome = { failures : string list; warnings : string list; report : string }

(* --- JSON accessors (missing fields surface as comparison failures,
   never exceptions: a malformed document is itself a regression) --- *)

(* All accessors take and return options, so a chain over a malformed
   document collapses to [None] instead of raising. *)
let field name = function
  | Some (Json.Obj fs) -> List.assoc_opt name fs
  | _ -> None

let num = function Some (Json.Num f) -> Some f | _ -> None
let str = function Some (Json.Str s) -> Some s | _ -> None
let boolean = function Some (Json.Bool b) -> Some b | _ -> None
let items = function Some (Json.List l) -> Some l | _ -> None
let fnum j name = num (field name j)
let fint j name = Option.map int_of_float (fnum j name)
let fstr j name = str (field name j)
let fbool j name = boolean (field name j)
let flist j name = items (field name j)

type ctx = {
  buf : Buffer.t;
  mutable failures : string list;
  mutable warnings : string list;
  tolerance : float;
}

let info ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let fail ctx fmt =
  Printf.ksprintf
    (fun s ->
      ctx.failures <- s :: ctx.failures;
      info ctx "FAIL %s" s)
    fmt

let warn ctx fmt =
  Printf.ksprintf
    (fun s ->
      ctx.warnings <- s :: ctx.warnings;
      info ctx "warn %s" s)
    fmt

let pct_change ~old_v ~new_v =
  if old_v = 0.0 then 0.0 else 100.0 *. ((new_v /. old_v) -. 1.0)

(* --- the cost grid: cell-for-cell equality --- *)

(* Two full runs with the same seed, update-count range and generator
   scale must agree on every page count: the instrumentation layers
   (tracing, logging, journalling) are required to be invisible in the
   paper's numbers.  Documents that predate the scale axis carry no
   meta.scale key and compare as scale 1. *)
let meta_scale d =
  Option.value
    (Option.bind (field "meta" d) (fun m -> fint (Some m) "scale"))
    ~default:1

let grid_comparable ctx ~old_doc ~new_doc =
  let meta d =
    (fint d "max_uc", fint d "seed", fbool d "smoke",
     Option.value (fint d "scale") ~default:1)
  in
  match (field "meta" old_doc, field "meta" new_doc) with
  | Some om, Some nm when meta (Some om) = meta (Some nm) -> true
  | Some om, Some nm ->
      info ctx
        "grid: equality skipped (incomparable runs: old max_uc=%s smoke=%s \
         scale=%d, new max_uc=%s smoke=%s scale=%d)"
        (match fint (Some om) "max_uc" with Some n -> string_of_int n | None -> "?")
        (match fbool (Some om) "smoke" with Some b -> string_of_bool b | None -> "?")
        (meta_scale old_doc)
        (match fint (Some nm) "max_uc" with Some n -> string_of_int n | None -> "?")
        (match fbool (Some nm) "smoke" with Some b -> string_of_bool b | None -> "?")
        (meta_scale new_doc);
      false
  | _ ->
      fail ctx "meta section missing";
      false

let run_key run = (fstr run "kind", fint run "loading")

let compare_grid ctx ~old_doc ~new_doc =
  match (flist old_doc "grid", flist new_doc "grid") with
  | None, _ | _, None -> fail ctx "grid section missing"
  | Some old_runs, Some new_runs ->
      if grid_comparable ctx ~old_doc ~new_doc then begin
        let identical = ref 0 in
        List.iter
          (fun nrun ->
            let nrun = Some nrun in
            let kind =
              Option.value (fstr nrun "kind") ~default:"?"
            and loading = Option.value (fint nrun "loading") ~default:(-1) in
            match
              List.find_opt (fun o -> run_key (Some o) = run_key nrun) old_runs
            with
            | None -> warn ctx "grid: %s %d%% has no old counterpart" kind loading
            | Some orun -> (
                match (flist (Some orun) "cells", flist nrun "cells") with
                | Some oc, Some nc when List.length oc = List.length nc ->
                    let diverged =
                      List.find_index
                        (fun (o, n) -> not (Json.equal o n))
                        (List.combine oc nc)
                    in
                    (match diverged with
                    | None -> incr identical
                    | Some i ->
                        fail ctx "grid: %s %d%% diverges at cell %d (uc %d)"
                          kind loading i i)
                | Some oc, Some nc ->
                    fail ctx "grid: %s %d%% cell count changed (%d -> %d)" kind
                      loading (List.length oc) (List.length nc)
                | _ -> fail ctx "grid: %s %d%% cells missing" kind loading))
          new_runs;
        List.iter
          (fun orun ->
            if
              not
                (List.exists
                   (fun n -> run_key (Some n) = run_key (Some orun))
                   new_runs)
            then
              fail ctx "grid: %s %d%% dropped from the new run"
                (Option.value (fstr (Some orun) "kind") ~default:"?")
                (Option.value (fint (Some orun) "loading") ~default:(-1)))
          old_runs;
        info ctx "grid: %d/%d database configurations identical cell-for-cell"
          !identical (List.length new_runs)
      end

(* --- per-section wall-time deltas --- *)

(* Sub-50ms sections are dominated by scheduling noise; drift warnings
   only fire above that floor. *)
let wall_noise_floor_s = 0.05

let compare_sections ctx ~old_doc ~new_doc =
  match (flist old_doc "sections", flist new_doc "sections") with
  | None, _ | _, None -> info ctx "sections: missing; wall-time deltas skipped"
  | Some olds, Some news ->
      List.iter
        (fun n ->
          let n = Some n in
          match fstr n "label" with
          | None -> ()
          | Some label -> (
              match
                List.find_opt (fun o -> fstr (Some o) "label" = Some label) olds
              with
              | None -> info ctx "section %-20s (new; no old timing)" label
              | Some o -> (
                  match (fnum (Some o) "wall_s", fnum n "wall_s") with
                  | Some old_v, Some new_v ->
                      let delta = pct_change ~old_v ~new_v in
                      info ctx "section %-20s %8.3fs -> %8.3fs (%+6.1f%%)" label
                        old_v new_v delta;
                      if
                        new_v > wall_noise_floor_s
                        && new_v > old_v *. (1.0 +. ctx.tolerance)
                      then
                        warn ctx
                          "section %s slowed %.1f%% (tolerance %.0f%%)" label
                          delta (100.0 *. ctx.tolerance)
                  | _ -> ())))
        news

(* --- pruning: internal gates on the new run, ratio drift vs the old --- *)

let compare_pruning ctx ~old_doc ~new_doc =
  match (field "pruning" old_doc, field "pruning" new_doc) with
  | _, None -> fail ctx "pruning section missing from the new run"
  | old_p, Some np -> (
      let np = Some np in
      (match fbool np "all_identical" with
      | Some true -> ()
      | _ -> fail ctx "pruning: fences changed a query result");
      (match field "as_of" np with
      | None -> fail ctx "pruning: as_of summary missing"
      | Some asof ->
          let asof = Some asof in
          (match fint asof "skipped" with
          | Some n when n > 0 ->
              info ctx "pruning: %d pages skipped on rollback queries" n
          | _ -> fail ctx "pruning: rollback queries skipped no pages");
          (match fnum asof "worst_ratio" with
          | Some r when r < 1.0 ->
              info ctx "pruning: worst growth-rate ratio %.3f" r
          | Some r -> fail ctx "pruning: growth-rate ratio %.3f not reduced" r
          | None -> fail ctx "pruning: worst_ratio missing"));
      match
        ( Option.bind old_p (fun o -> field "as_of" (Some o)),
          field "as_of" np )
      with
      | Some oa, Some na -> (
          match
            (fnum (Some oa) "worst_ratio", fnum (Some na) "worst_ratio")
          with
          | Some old_v, Some new_v
            when new_v > (old_v *. (1.0 +. ctx.tolerance)) +. 0.01 ->
              warn ctx "pruning: growth-rate ratio drifted %.3f -> %.3f" old_v
                new_v
          | _ -> ())
      | _ -> ())

(* --- throughput: positive rates, per-query drift --- *)

let compare_throughput ctx ~old_doc ~new_doc =
  match (field "throughput" old_doc, field "throughput" new_doc) with
  | _, None -> fail ctx "throughput section missing from the new run"
  | old_t, Some nt -> (
      let nt = Some nt in
      match flist nt "queries" with
      | None | Some [] -> fail ctx "throughput: section is empty"
      | Some qs ->
          List.iter
            (fun q ->
              let q = Some q in
              let name = Option.value (fstr q "query") ~default:"?" in
              (match fnum q "tuples_per_s" with
              | Some r when r > 0.0 -> ()
              | _ -> fail ctx "throughput: %s reports no throughput" name);
              (match (fnum q "reads", fnum q "wall_s") with
              | Some r, Some w when r >= 0.0 && w > 0.0 -> ()
              | _ -> fail ctx "throughput: %s has bad reads/wall fields" name);
              match
                Option.bind old_t (fun o ->
                    Option.bind (flist (Some o) "queries") (fun oqs ->
                        List.find_opt
                          (fun oq -> fstr (Some oq) "query" = Some name)
                          oqs))
              with
              | None -> ()
              | Some oq -> (
                  match
                    (fnum (Some oq) "tuples_per_s", fnum q "tuples_per_s")
                  with
                  | Some old_v, Some new_v ->
                      info ctx "throughput %-4s %12.0f/s -> %12.0f/s (%+6.1f%%)"
                        name old_v new_v (pct_change ~old_v ~new_v);
                      if new_v < old_v /. (1.0 +. ctx.tolerance) then
                        warn ctx "throughput: %s dropped %.1f%%" name
                          (-.pct_change ~old_v ~new_v)
                  | _ -> ()))
            qs)

(* --- speedup-vs-workers trend tables --- *)

let speedup_at q ~workers =
  Option.bind (flist q "cells") (fun cells ->
      List.find_map
        (fun c ->
          let c = Some c in
          if fint c "workers" = Some workers then fnum c "speedup" else None)
        cells)

(* One report line per query configuration: the whole speedup curve of
   the new run next to the old one, so a parallel-efficiency regression
   is visible even when every hard gate still passes.  [tag] names the
   per-query axis key ("uc" for the parallel section, "scale" for the
   scale sweep); an old document without the section shows "-". *)
let trend_table ctx ~section ~tag old_sec new_sec =
  match flist new_sec "queries" with
  | None | Some [] -> ()
  | Some qs ->
      let workers =
        Option.value
          (Option.map
             (List.filter_map (function
               | Json.Num f -> Some (int_of_float f)
               | _ -> None))
             (flist new_sec "workers"))
          ~default:[]
      in
      info ctx "%s trend (speedup vs workers, old -> new):" section;
      List.iter
        (fun q ->
          let q = Some q in
          let name = Option.value (fstr q "query") ~default:"?" in
          let key = Option.value (fint q tag) ~default:(-1) in
          let oq =
            Option.bind (flist old_sec "queries") (fun oqs ->
                List.find_opt
                  (fun oq ->
                    fstr (Some oq) "query" = Some name
                    && fint (Some oq) tag = Some key)
                  oqs)
          in
          let cell w =
            let show = function
              | Some v -> Printf.sprintf "%.2fx" v
              | None -> "-"
            in
            Printf.sprintf "w%d %5s -> %5s" w
              (show (Option.bind oq (fun o -> speedup_at (Some o) ~workers:w)))
              (show (speedup_at q ~workers:w))
          in
          info ctx "  %-4s %s %-4d %s" name tag key
            (String.concat "   " (List.map cell workers)))
        qs

(* --- parallel: row identity always; the speedup floor when the
   machine has cores; speedup drift as a warning --- *)

let speedup_floor = 1.5

let parallel_best_speedup q ~workers =
  Option.bind (flist q "cells") (fun cells ->
      List.fold_left
        (fun acc c ->
          let c = Some c in
          if fint c "workers" = Some workers then
            match (fnum c "speedup", acc) with
            | Some s, Some b -> Some (Float.max s b)
            | Some s, None -> Some s
            | None, _ -> acc
          else acc)
        None cells)

let compare_parallel ctx ~old_doc ~new_doc =
  match (field "parallel" old_doc, field "parallel" new_doc) with
  | _, None -> fail ctx "parallel section missing from the new run"
  | old_p, Some np -> (
      let np = Some np in
      match flist np "queries" with
      | None | Some [] -> fail ctx "parallel: section is empty"
      | Some qs ->
          List.iter
            (fun q ->
              let q = Some q in
              let name = Option.value (fstr q "query") ~default:"?" in
              let uc = Option.value (fint q "uc") ~default:(-1) in
              (match fbool q "identical" with
              | Some true -> ()
              | _ -> fail ctx "parallel: %s uc%d rows diverge" name uc);
              Option.iter
                (List.iter (fun c ->
                     let c = Some c in
                     let w = Option.value (fint c "workers") ~default:(-1) in
                     (match fbool c "identical" with
                     | Some true -> ()
                     | _ ->
                         fail ctx "parallel: %s uc%d w%d rows diverge" name uc w);
                     match fnum c "wall_s" with
                     | Some s when s > 0.0 -> ()
                     | _ -> fail ctx "parallel: %s uc%d w%d has no wall time" name uc w))
                (flist q "cells"))
            qs;
          let cores = Option.value (fint np "recommended_domains") ~default:0 in
          if cores >= 4 then begin
            let top_uc =
              Option.value
                (Option.bind (field "meta" new_doc) (fun m -> fint (Some m) "max_uc"))
                ~default:(-1)
            in
            List.iter
              (fun name ->
                match
                  List.find_opt
                    (fun q ->
                      fstr (Some q) "query" = Some name
                      && fint (Some q) "uc" = Some top_uc)
                    qs
                with
                | None -> fail ctx "parallel: %s uc%d missing" name top_uc
                | Some q -> (
                    match parallel_best_speedup (Some q) ~workers:4 with
                    | Some best when best >= speedup_floor ->
                        info ctx "parallel: %s uc%d %.2fx at 4 workers" name
                          top_uc best
                    | Some best ->
                        fail ctx
                          "parallel: %s uc%d %.2fx < %.1fx at 4 workers" name
                          top_uc best speedup_floor
                    | None ->
                        fail ctx "parallel: %s uc%d has no 4-worker cell" name
                          top_uc))
              [ "Q03"; "Q11" ]
          end
          else
            info ctx
              "parallel: %d recommended domain(s); speedup floor skipped" cores;
          (* speedup drift against the old run, same query/uc, 4 workers *)
          Option.iter
            (fun op ->
              Option.iter
                (List.iter (fun oq ->
                     let oq = Some oq in
                     let name = Option.value (fstr oq "query") ~default:"?" in
                     let uc = fint oq "uc" in
                     match
                       List.find_opt
                         (fun q ->
                           fstr (Some q) "query" = Some name
                           && fint (Some q) "uc" = uc)
                         qs
                     with
                     | None -> ()
                     | Some q -> (
                         match
                           ( parallel_best_speedup oq ~workers:4,
                             parallel_best_speedup (Some q) ~workers:4 )
                         with
                         | Some old_v, Some new_v
                           when old_v > 1.0
                                && new_v < old_v /. (1.0 +. ctx.tolerance) ->
                             warn ctx
                               "parallel: %s uc%d 4-worker speedup %.2fx -> %.2fx"
                               name
                               (Option.value uc ~default:(-1))
                               old_v new_v
                         | _ -> ())))
                (flist (Some op) "queries"))
            old_p;
          trend_table ctx ~section:"parallel" ~tag:"uc" old_p np)

(* --- scale sweep: row identity always; where the machine has the
   cores, parallelism must pay at scale (>= 2x on Q03/Q11 with 4
   workers at scale >= 10) and must not hurt at paper scale (no query
   below 0.9x at scale 1 — the admission threshold is supposed to
   decline fan-outs too small to amortize) --- *)

let scale10_speedup_floor = 2.0
let scale1_speedup_floor = 0.9

let compare_scale ctx ~old_doc ~new_doc =
  match (field "scale" old_doc, field "scale" new_doc) with
  | _, None -> fail ctx "scale section missing from the new run"
  | old_s, Some ns -> (
      let ns = Some ns in
      match flist ns "queries" with
      | None | Some [] -> fail ctx "scale: section is empty"
      | Some qs ->
          List.iter
            (fun q ->
              let q = Some q in
              let name = Option.value (fstr q "query") ~default:"?" in
              let sc = Option.value (fint q "scale") ~default:(-1) in
              (match fbool q "identical" with
              | Some true -> ()
              | _ -> fail ctx "scale: %s at scale %d rows diverge" name sc);
              Option.iter
                (List.iter (fun c ->
                     let c = Some c in
                     let w = Option.value (fint c "workers") ~default:(-1) in
                     (match fbool c "identical" with
                     | Some true -> ()
                     | _ ->
                         fail ctx "scale: %s scale %d w%d rows diverge" name sc
                           w);
                     match fnum c "wall_s" with
                     | Some s when s > 0.0 -> ()
                     | _ ->
                         fail ctx "scale: %s scale %d w%d has no wall time" name
                           sc w))
                (flist q "cells"))
            qs;
          let cores = Option.value (fint ns "recommended_domains") ~default:0 in
          if cores >= 4 then
            List.iter
              (fun q ->
                let q = Some q in
                let name = Option.value (fstr q "query") ~default:"?" in
                let sc = Option.value (fint q "scale") ~default:1 in
                if sc >= 10 && List.mem name [ "Q03"; "Q11" ] then begin
                  match speedup_at q ~workers:4 with
                  | Some s when s >= scale10_speedup_floor ->
                      info ctx "scale: %s at scale %d %.2fx at 4 workers" name
                        sc s
                  | Some s ->
                      fail ctx "scale: %s at scale %d %.2fx < %.1fx at 4 workers"
                        name sc s scale10_speedup_floor
                  | None ->
                      fail ctx "scale: %s at scale %d has no 4-worker cell" name
                        sc
                end
                else if sc = 1 then
                  Option.iter
                    (List.iter (fun c ->
                         let c = Some c in
                         match (fint c "workers", fnum c "speedup") with
                         | Some w, Some s when s < scale1_speedup_floor ->
                             fail ctx
                               "scale: %s at scale 1 regresses to %.2fx with \
                                %d workers (floor %.1fx)"
                               name s w scale1_speedup_floor
                         | _ -> ()))
                    (flist q "cells"))
              qs
          else
            info ctx "scale: %d recommended domain(s); speedup gates skipped"
              cores;
          trend_table ctx ~section:"scale" ~tag:"scale" old_s ns)

(* --- durability: identity and the sync-per-statement ceiling --- *)

let compare_durability ctx ~old_doc ~new_doc =
  match (field "durability" old_doc, field "durability" new_doc) with
  | _, None -> fail ctx "durability section missing from the new run"
  | old_d, Some nd ->
      let nd = Some nd in
      (match fbool nd "identical" with
      | Some true -> ()
      | _ -> fail ctx "durability: journal changed stored tuples");
      (match (fnum nd "overhead_vs_sync_per_stmt", fnum nd "ceiling") with
      | Some o, Some c when o <= c ->
          info ctx "durability: journal %.3fx of naive sync (ceiling %.0fx)" o c
      | Some o, Some _ -> fail ctx "durability: journal %.2fx of naive sync" o
      | _ -> fail ctx "durability: overhead fields missing");
      (match flist nd "phases" with
      | Some ps when List.length ps >= 4 ->
          List.iter
            (fun p ->
              match fnum (Some p) "journal_s" with
              | Some s when s >= 0.0 -> ()
              | _ ->
                  fail ctx "durability: phase %s has no journal time"
                    (Option.value (fstr (Some p) "phase") ~default:"?"))
            ps
      | _ -> fail ctx "durability: phases missing");
      (match
         ( Option.bind old_d (fun o -> fnum (Some o) "overhead_vs_sync_per_stmt"),
           fnum nd "overhead_vs_sync_per_stmt" )
       with
      | Some old_v, Some new_v
        when old_v > 0.0 && new_v > old_v *. (1.0 +. ctx.tolerance) ->
          warn ctx "durability: overhead drifted %.3fx -> %.3fx" old_v new_v
      | _ -> ())

(* --- concurrency: snapshot readers must scale past the big lock --- *)

(* Hard floor on the session layer's reason to exist: with 4 reader
   domains and 1 writer, snapshot readers must push at least twice the
   statements a single reader does — on machines with the cores to show
   it.  Old documents predating the section are tolerated (the section
   is new); a new run without it is a regression. *)
let concurrency_speedup_floor = 2.0

let concurrency_reader_rate sec ~readers ~mode =
  Option.bind (flist sec "cells") (fun cells ->
      List.find_map
        (fun c ->
          let c = Some c in
          if fint c "readers" = Some readers && fstr c "mode" = Some mode then
            fnum c "reader_stmts_per_s"
          else None)
        cells)

let compare_concurrency ctx ~old_doc ~new_doc =
  match (field "concurrency" old_doc, field "concurrency" new_doc) with
  | _, None -> fail ctx "concurrency section missing from the new run"
  | old_c, Some nc -> (
      let nc = Some nc in
      (match flist nc "cells" with
      | None | Some [] -> fail ctx "concurrency: section is empty"
      | Some cells ->
          List.iter
            (fun c ->
              let c = Some c in
              let readers = Option.value (fint c "readers") ~default:(-1) in
              let mode = Option.value (fstr c "mode") ~default:"?" in
              (match fint c "reader_stmts" with
              | Some n when n > 0 -> ()
              | _ ->
                  fail ctx "concurrency: %dr/%s completed no reader statements"
                    readers mode);
              match (fnum c "p50_ms", fnum c "p99_ms") with
              | Some p50, Some p99 when p50 >= 0.0 && p99 >= p50 -> ()
              | _ ->
                  fail ctx "concurrency: %dr/%s has bad latency percentiles"
                    readers mode)
            cells);
      let cores = Option.value (fint nc "recommended_domains") ~default:0 in
      (if cores >= 4 then
         match fnum nc "speedup_4r_vs_1r" with
         | Some s when s >= concurrency_speedup_floor ->
             info ctx "concurrency: 4 snapshot readers run %.2fx of 1" s
         | Some s ->
             fail ctx
               "concurrency: 4 snapshot readers run %.2fx < %.1fx of 1" s
               concurrency_speedup_floor
         | None -> fail ctx "concurrency: speedup_4r_vs_1r missing"
       else
         info ctx
           "concurrency: %d recommended domain(s); speedup floor skipped" cores);
      match old_c with
      | None -> info ctx "concurrency: no old section; trend skipped"
      | Some oc -> (
          match
            ( concurrency_reader_rate (Some oc) ~readers:4 ~mode:"snapshot",
              concurrency_reader_rate nc ~readers:4 ~mode:"snapshot" )
          with
          | Some old_v, Some new_v ->
              info ctx "concurrency: 4r snapshot %.0f/s -> %.0f/s (%+.1f%%)"
                old_v new_v (pct_change ~old_v ~new_v);
              if new_v < old_v /. (1.0 +. ctx.tolerance) then
                warn ctx "concurrency: 4r snapshot throughput dropped %.1f%%"
                  (-.pct_change ~old_v ~new_v)
          | _ -> ()))

(* --- temporal join: the merge join must return the nested loop's rows
   verbatim and, where the nested wall is big enough to mean anything,
   beat it --- *)

(* The section's own noise floor keeps the gate off the sub-millisecond
   cells (the selective paper queries at uc 0), where the ratio is
   scheduling noise; old documents predating the section are tolerated,
   a new run without it is a regression. *)
let tjoin_speedup_floor = 2.0
let tjoin_gated_queries = [ "Q09c"; "Q11" ]

let tjoin_cell_key q = (fstr q "query", fint q "uc", fint q "scale")

let compare_tjoin ctx ~old_doc ~new_doc =
  match (field "tjoin" old_doc, field "tjoin" new_doc) with
  | _, None -> fail ctx "tjoin section missing from the new run"
  | old_t, Some nt -> (
      let nt = Some nt in
      let floor_s = Option.value (fnum nt "noise_floor_s") ~default:0.05 in
      match flist nt "queries" with
      | None | Some [] -> fail ctx "tjoin: section is empty"
      | Some qs ->
          let cores = Option.value (fint nt "recommended_domains") ~default:0 in
          List.iter
            (fun q ->
              let q = Some q in
              let name = Option.value (fstr q "query") ~default:"?" in
              let uc = Option.value (fint q "uc") ~default:(-1) in
              let sc = Option.value (fint q "scale") ~default:(-1) in
              (match fbool q "identical" with
              | Some true -> ()
              | _ ->
                  fail ctx "tjoin: %s uc%d scale%d rows diverge from the \
                            nested loop"
                    name uc sc);
              match (fnum q "off_wall_s", fnum q "on_wall_s") with
              | Some off, Some on when off > 0.0 && on > 0.0 ->
                  info ctx "tjoin %-4s uc%-2d scale%-3d %9.2fms -> %8.2fms (%.2fx)"
                    name uc sc (1e3 *. off) (1e3 *. on) (off /. on);
                  if
                    cores >= 4
                    && List.mem name tjoin_gated_queries
                    && off >= floor_s
                  then
                    if off /. on >= tjoin_speedup_floor then
                      info ctx "tjoin: %s uc%d scale%d %.2fx at the gate" name
                        uc sc (off /. on)
                    else
                      fail ctx "tjoin: %s uc%d scale%d %.2fx < %.1fx over the \
                                nested loop"
                        name uc sc (off /. on) tjoin_speedup_floor
              | _ -> fail ctx "tjoin: %s uc%d scale%d has bad wall fields" name uc sc)
            qs;
          if cores < 4 then
            info ctx "tjoin: %d recommended domain(s); speedup floor skipped"
              cores;
          match Option.bind old_t (fun o -> flist (Some o) "queries") with
          | None -> info ctx "tjoin: no old section; trend skipped"
          | Some oqs ->
              List.iter
                (fun q ->
                  let q = Some q in
                  match
                    List.find_opt
                      (fun oq -> tjoin_cell_key (Some oq) = tjoin_cell_key q)
                      oqs
                  with
                  | None -> ()
                  | Some oq -> (
                      match
                        (fnum (Some oq) "speedup", fnum q "speedup")
                      with
                      | Some old_v, Some new_v
                        when old_v > 1.0
                             && new_v < old_v /. (1.0 +. ctx.tolerance) ->
                          warn ctx "tjoin: %s uc%d scale%d speedup %.2fx -> %.2fx"
                            (Option.value (fstr q "query") ~default:"?")
                            (Option.value (fint q "uc") ~default:(-1))
                            (Option.value (fint q "scale") ~default:(-1))
                            old_v new_v
                      | _ -> ()))
                qs)

let compare_metrics ctx ~new_doc =
  match field "metrics" new_doc with
  | None -> fail ctx "metrics section missing from the new run"
  | Some m -> (
      match Obs_json.validate m with
      | Ok () -> info ctx "metrics: dump matches the shared schema"
      | Error e -> fail ctx "metrics: %s" e)

(* --- entry points --- *)

let compare_docs ?(tolerance = 0.5) ~old_label ~new_label old_doc new_doc =
  let old_doc = Some old_doc and new_doc = Some new_doc in
  let ctx =
    { buf = Buffer.create 1024; failures = []; warnings = []; tolerance }
  in
  info ctx "bench compare: %s (old) vs %s (new), tolerance %.0f%%" old_label
    new_label (100.0 *. tolerance);
  compare_grid ctx ~old_doc ~new_doc;
  compare_sections ctx ~old_doc ~new_doc;
  compare_pruning ctx ~old_doc ~new_doc;
  compare_throughput ctx ~old_doc ~new_doc;
  compare_parallel ctx ~old_doc ~new_doc;
  compare_scale ctx ~old_doc ~new_doc;
  compare_durability ctx ~old_doc ~new_doc;
  compare_concurrency ctx ~old_doc ~new_doc;
  compare_tjoin ctx ~old_doc ~new_doc;
  compare_metrics ctx ~new_doc;
  let failures = List.rev ctx.failures and warnings = List.rev ctx.warnings in
  info ctx "result: %s (%d failure(s), %d warning(s))"
    (if failures = [] then "OK" else "REGRESSION")
    (List.length failures) (List.length warnings);
  { failures; warnings; report = Buffer.contents ctx.buf }

let load path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no such bench document: %s" path)
  else begin
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse src with
    | Ok doc -> Ok doc
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
  end

let compare_files ?tolerance ~old_path ~new_path () =
  match (load old_path, load new_path) with
  | Error e, _ | _, Error e -> Error e
  | Ok old_doc, Ok new_doc ->
      Ok
        (compare_docs ?tolerance ~old_label:(Filename.basename old_path)
           ~new_label:(Filename.basename new_path) old_doc new_doc)

let run ?tolerance ~old_path ~new_path () =
  match compare_files ?tolerance ~old_path ~new_path () with
  | Error e ->
      prerr_endline ("bench compare: " ^ e);
      2
  | Ok outcome ->
      print_string outcome.report;
      if outcome.failures = [] then 0 else 1
