(* Reproduction of every table and figure in the evaluation of:

     Ahn & Snodgrass, "Performance Evaluation of a Temporal Database
     Management System", SIGMOD 1986 (UNC TR 85-033).

   Sections printed:
     Figure 5  - space requirements (pages)
     Figure 6  - input costs for the temporal database, 100% loading
     Figure 7  - input pages for the four database types
     Figure 8  - graphs of input pages vs update count
     Figure 9  - fixed costs, variable costs, growth rates
     model     - validation of cost(n) = fixed + variable*(1 + rate*n)
     s5.4      - non-uniform update distribution
     Figure 10 - two-level store and secondary indexing improvements
     pruning   - time-fence skip-scans: the cost grid fences on vs off
     durability - write-ahead journal wall-clock overhead, on vs off
     ablations - buffer pool size, overflow placement, loading crossover
     timing    - bechamel wall-clock micro-benchmarks (one per figure)

   The paper's metric is page I/O with one buffer per user relation; wall
   clock appears only in the timing section.  The paper-faithful sections
   run with fence pruning disabled - the paper's cost model assumes every
   page of a chain is read - and only the pruning section toggles it.

   The pruning section doubles as a regression gate: the process exits
   non-zero if the rollback queries skip no pages, if fences change any
   query result, or if the fenced growth rate fails to beat the unfenced
   one.

   Flags:
     --smoke      evolve to UC 3 instead of 15 and skip the slow sections
                  (s5.4, ablations, bechamel timing) - a CI-sized run
     --scale N    generator scale axis: multiply the paper's 1024-row
                  relations (and so the work of every update round) by N
                  in the paper-faithful sections; N must be one of
                  1|10|100|1000 (default 1).  The scale-sweep section
                  below runs its own fixed ladder of scales regardless,
                  so the canonical scale-1 documents still probe large
                  scales.  The meta.scale key records N so --compare can
                  skip grid comparisons across different scales
     --json PATH  write a machine-readable result document to PATH:
                  per-section wall time and peak heap words, the full
                  cost grid, the pruning experiment, the executor
                  throughput section and an engine metrics snapshot
     --throughput-baseline PATH
                  after measuring throughput, record the tuples/sec of
                  this build under the current update count in PATH
                  (merging with any other update counts already there);
                  later runs load the file and report their speedup
                  against it
     --compare OLD NEW
                  run no benchmark: diff two --json result documents
                  (grid cell equality, section wall-time drift, the
                  pruning/parallel/durability gates) and exit non-zero
                  on a hard regression; see Tdb_benchkit.Compare
     --compare-tolerance F
                  relative noise tolerance for drift warnings in
                  --compare (default 0.5 = 50%) *)

module Workload = Tdb_benchkit.Workload
module Evolve = Tdb_benchkit.Evolve
module Paper_queries = Tdb_benchkit.Paper_queries
module Cost_model = Tdb_benchkit.Cost_model
module Report = Tdb_benchkit.Report
module Pruning = Tdb_benchkit.Pruning
module Compare = Tdb_benchkit.Compare
module Obs_json = Tdb_benchkit.Obs_json
module Time_fence = Tdb_storage.Time_fence
module Json = Tdb_obs.Json
module Database = Tdb_core.Database
module Engine = Tdb_core.Engine
module Executor = Tdb_query.Executor
module Relation_file = Tdb_storage.Relation_file
module Buffer_pool = Tdb_storage.Buffer_pool
module Io_stats = Tdb_storage.Io_stats
module Two_level_store = Tdb_twostore.Two_level_store
module Secondary_index = Tdb_twostore.Secondary_index
module Db_instance = Tdb_session.Db_instance
module Session = Tdb_session.Session
module Schema = Tdb_relation.Schema
module Value = Tdb_relation.Value
module Attr_type = Tdb_relation.Attr_type
module Chronon = Tdb_time.Chronon
module Clock = Tdb_time.Clock

let seed = 850331 (* the TR number, for luck *)

(* Flags are read before the constants below: top-level bindings evaluate
   in order, so a smoke run shrinks the whole grid. *)
let smoke = Array.exists (( = ) "--smoke") (Sys.argv : string array)

let flag_value name =
  let path = ref None in
  Array.iteri
    (fun i a ->
      if a = name && i + 1 < Array.length Sys.argv then
        path := Some Sys.argv.(i + 1))
    Sys.argv;
  !path

let json_path = flag_value "--json"
let throughput_baseline_path = flag_value "--throughput-baseline"

(* --compare OLD NEW: a pure document diff, no benchmark run. *)
let compare_paths =
  let r = ref None in
  Array.iteri
    (fun i a ->
      if a = "--compare" && i + 2 < Array.length Sys.argv then
        r := Some (Sys.argv.(i + 1), Sys.argv.(i + 2)))
    Sys.argv;
  !r

let compare_tolerance =
  Option.bind (flag_value "--compare-tolerance") float_of_string_opt

(* --scale N: every paper-faithful workload holds N * 1024 rows (ids stay
   dense, so the hot probe tuples keep their identity), and each uniform
   update round replaces N * 1024 current versions. *)
let scale =
  match flag_value "--scale" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt s with
      | Some n when List.mem n [ 1; 10; 100; 1000 ] -> n
      | _ ->
          Printf.eprintf "fatal usage error: --scale must be 1, 10, 100 or 1000 (got %s)\n" s;
          exit 2)

let n_keys = Workload.n_tuples * scale
let max_uc = if smoke then 3 else 15
let report_uc = if smoke then 2 else 14

(* ------------------------------------------------------------------ *)
(* Data collection: the full grid of 8 databases evolved to UC 15.    *)
(* ------------------------------------------------------------------ *)

type cell = {
  h_pages : int;
  i_pages : int;
  costs : (Paper_queries.id * int) list;
}

type run = {
  kind : Workload.kind;
  loading : int;
  cells : cell array; (* index = update count, 0 .. max_uc *)
}

let measure_cell (w : Workload.t) =
  let costs =
    List.filter_map
      (fun qid ->
        Option.map
          (fun src -> (qid, Evolve.measure_query w src))
          (Paper_queries.text qid w.Workload.kind))
      Paper_queries.all
  in
  let h_pages, i_pages = Evolve.sizes w in
  { h_pages; i_pages; costs }

let collect_run ~kind ~loading =
  let w = Workload.build ~scale ~kind ~loading ~seed () in
  let cells = Array.make (max_uc + 1) { h_pages = 0; i_pages = 0; costs = [] } in
  cells.(0) <- measure_cell w;
  let rounds = if kind = Workload.Static then 0 else max_uc in
  for uc = 1 to rounds do
    Evolve.uniform_round w ~round:uc;
    cells.(uc) <- measure_cell w
  done;
  ({ kind; loading; cells }, w)

let cost run ~uc qid =
  match List.assoc_opt qid run.cells.(uc).costs with Some c -> c | None -> -1

let cost_str run ~uc qid =
  match List.assoc_opt qid run.cells.(uc).costs with
  | Some c -> string_of_int c
  | None -> "-"

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)
(* ------------------------------------------------------------------ *)

let figure5 runs =
  let size r which uc =
    match which with
    | `H -> r.cells.(uc).h_pages
    | `I -> r.cells.(uc).i_pages
  in
  let row label value_of =
    label :: List.concat_map (fun r -> [ value_of r `H; value_of r `I ]) runs
  in
  let header =
    ""
    :: List.concat_map
         (fun r ->
           let tag =
             Printf.sprintf "%s%d" (String.sub (Workload.kind_to_string r.kind) 0 4) r.loading
           in
           [ tag ^ " H"; tag ^ " I" ])
         runs
  in
  let rows =
    [
      row "size, UC=0" (fun r w -> string_of_int (size r w 0));
      row
        (Printf.sprintf "size, UC=%d" report_uc)
        (fun r w ->
          if r.kind = Workload.Static then "-"
          else string_of_int (size r w report_uc));
      row "growth/update" (fun r w ->
          if r.kind = Workload.Static then "-"
          else
            Report.centi
              (float_of_int (size r w report_uc - size r w 0)
              /. float_of_int report_uc));
      row "growth rate" (fun r w ->
          if r.kind = Workload.Static then "-"
          else
            Report.centi
              (float_of_int (size r w report_uc - size r w 0)
              /. float_of_int report_uc
              /. float_of_int (size r w 0)));
    ]
  in
  print_endline "== Figure 5: Space requirements (in pages) ==";
  print_endline (Report.table ~header rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let figure6 run =
  print_endline
    "== Figure 6: Input costs for the temporal database with 100% loading ==";
  let header = "Query" :: List.init (max_uc + 1) string_of_int in
  let rows =
    List.filter_map
      (fun qid ->
        if List.mem_assoc qid run.cells.(0).costs then
          Some
            (Paper_queries.name qid
            :: List.init (max_uc + 1) (fun uc -> cost_str run ~uc qid))
        else None)
      Paper_queries.all
  in
  print_endline (Report.table ~header rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let figure7 runs =
  print_endline
    "== Figure 7: Number of input pages for four types of databases ==";
  let header =
    "Query"
    :: List.concat_map
         (fun r ->
           let tag =
             Printf.sprintf "%s%d" (String.sub (Workload.kind_to_string r.kind) 0 4) r.loading
           in
           [ tag ^ "/0"; Printf.sprintf "%s/%d" tag report_uc ])
         runs
  in
  let rows =
    List.map
      (fun qid ->
        Paper_queries.name qid
        :: List.concat_map
             (fun r ->
               [
                 cost_str r ~uc:0 qid;
                 (if r.kind = Workload.Static then cost_str r ~uc:0 qid
                  else cost_str r ~uc:report_uc qid);
               ])
             runs)
      Paper_queries.all
  in
  print_endline (Report.table ~header rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

let figure8 ~temporal100 ~rollback50 =
  print_endline "== Figure 8: Graphs for input pages ==";
  let series run qids =
    List.filter_map
      (fun qid ->
        if List.mem_assoc qid run.cells.(0).costs then
          Some
            ( Paper_queries.name qid,
              List.init (max_uc + 1) (fun uc -> (uc, cost run ~uc qid)) )
        else None)
      qids
  in
  print_endline
    (Report.plot
       ~title:"(a) Temporal database with 100% loading (input pages)"
       ~series:(series temporal100 Paper_queries.[ Q10; Q09; Q11; Q03; Q01 ])
       ());
  print_newline ();
  print_endline
    (Report.plot ~title:"(b) Rollback database with 50% loading (input pages)"
       ~series:(series rollback50 Paper_queries.[ Q10; Q09; Q03; Q01 ])
       ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 9 and model validation                                       *)
(* ------------------------------------------------------------------ *)

let decompositions run =
  List.filter_map
    (fun qid ->
      match
        ( List.assoc_opt qid run.cells.(0).costs,
          List.assoc_opt qid run.cells.(report_uc).costs )
      with
      | Some c0, Some cn ->
          Some
            ( qid,
              Cost_model.decompose ~kind:run.kind ~loading:run.loading
                ~cost0:c0 ~cost_n:cn ~n:report_uc )
      | _ -> None)
    Paper_queries.all

let figure9 runs =
  print_endline "== Figure 9: Fixed costs, variable costs and growth rates ==";
  let interesting =
    List.filter
      (fun r -> r.kind = Workload.Rollback || r.kind = Workload.Temporal)
      runs
  in
  let header =
    "Query"
    :: List.concat_map
         (fun r ->
           let tag =
             Printf.sprintf "%s%d" (String.sub (Workload.kind_to_string r.kind) 0 4) r.loading
           in
           [ tag ^ " fix"; tag ^ " var"; tag ^ " rate" ])
         interesting
  in
  let rows =
    List.map
      (fun qid ->
        Paper_queries.name qid
        :: List.concat_map
             (fun r ->
               match List.assoc_opt qid (decompositions r) with
               | Some d when d.Cost_model.variable > 0. ->
                   [
                     Report.centi d.Cost_model.fixed;
                     Report.centi d.Cost_model.variable;
                     Report.centi
                       (float_of_int (cost r ~uc:report_uc qid - cost r ~uc:0 qid)
                       /. float_of_int report_uc /. d.Cost_model.variable);
                   ]
               | _ -> [ "-"; "-"; "-" ])
             interesting)
      Paper_queries.all
  in
  print_endline (Report.table ~header rows);
  print_endline
    "(rate = measured slope / variable cost; the paper's law: it equals the\n\
    \ loading factor on rollback databases and twice the loading factor on\n\
    \ temporal databases, independent of query type and access method)";
  print_newline ()

let model_validation runs =
  print_endline
    "== Model validation: cost(n) = fixed + variable * (1 + rate * n) ==";
  let rows =
    List.filter_map
      (fun r ->
        if r.kind = Workload.Static then None
        else begin
          let ds = decompositions r in
          let worst = ref 0. and sum = ref 0. and count = ref 0 in
          List.iter
            (fun (qid, d) ->
              for uc = 0 to max_uc do
                match List.assoc_opt qid r.cells.(uc).costs with
                | Some measured when measured > 0 ->
                    let predicted = Cost_model.predict d uc in
                    let e = Cost_model.relative_error ~predicted ~measured in
                    worst := max !worst e;
                    sum := !sum +. e;
                    incr count
                | _ -> ()
              done)
            ds;
          Some
            [
              Printf.sprintf "%s %d%%" (Workload.kind_to_string r.kind) r.loading;
              string_of_int !count;
              Printf.sprintf "%.2f%%" (100. *. !sum /. float_of_int !count);
              Printf.sprintf "%.2f%%" (100. *. !worst);
            ]
        end)
      runs
  in
  print_endline
    (Report.table
       ~header:[ "database"; "points"; "mean |error|"; "worst |error|" ]
       rows);
  print_endline
    "(fit from UC 0 and 14 with the type-determined growth rate, then\n\
    \ checked against every measured update count; the 50%-loading worst\n\
    \ cases are Figure 8(b)'s jagged staircase - odd rounds fill the slack\n\
    \ left by even rounds, so the linear model is half a step off on the\n\
    \ smallest queries)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 5.4: non-uniform distribution                               *)
(* ------------------------------------------------------------------ *)

let section54 () =
  print_endline "== Section 5.4: Non-uniform distribution of updates ==";
  print_endline
    "(one tuple updated 1024 times per round vs uniform evolution;\n\
    \ hashed access measured for every key and averaged)";
  let loading = 100 in
  let skewed_w = Workload.build ~scale ~kind:Workload.Temporal ~loading ~seed () in
  let uniform_w = Workload.build ~scale ~kind:Workload.Temporal ~loading ~seed () in
  let avg_hashed_access wk =
    let total = ref 0 in
    for key = 0 to n_keys - 1 do
      total := !total + Evolve.hashed_access_cost wk ~key
    done;
    float_of_int !total /. float_of_int n_keys
  in
  let rows = ref [] in
  for uc = 0 to 4 do
    if uc > 0 then begin
      Evolve.non_uniform_round skewed_w ~round:uc ~key:500;
      Evolve.uniform_round uniform_w ~round:uc
    end;
    let skewed = avg_hashed_access skewed_w in
    let flat = avg_hashed_access uniform_w in
    rows :=
      [
        string_of_int uc;
        Report.centi skewed;
        Report.centi flat;
        Report.centi (skewed -. flat);
      ]
      :: !rows
  done;
  print_endline
    (Report.table
       ~header:[ "avg UC"; "skewed mean"; "uniform mean"; "difference" ]
       (List.rev !rows));
  print_endline
    "(the paper's observation: the growth rate is independent of the\n\
    \ distribution of updated tuples - the two columns agree)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 10: two-level store and secondary indexing                   *)
(* ------------------------------------------------------------------ *)

let evolve_store store ~rounds =
  for round = 1 to rounds do
    let now = Chronon.add_seconds Workload.evolution_base (round * 86400) in
    for key = 0 to n_keys - 1 do
      ignore
        (Two_level_store.replace store ~now ~key:(Value.Int key) (fun tu ->
             (match tu.(2) with
             | Value.Int s -> tu.(2) <- Value.Int (s + 1)
             | _ -> ());
             tu))
    done
  done

type fig10_env = {
  store_h_simple : Two_level_store.t;
  store_h_clustered : Two_level_store.t;
  store_i_simple : Two_level_store.t;
  store_i_clustered : Two_level_store.t;
  query_db : Database.t;
  conv_w : Workload.t; (* the conventional temporal db, evolved to UC 14 *)
  idx_1l_heap : Secondary_index.t; (* over every version of conventional h *)
  idx_1l_hash : Secondary_index.t;
  idx_2l_cur_heap : Secondary_index.t; (* over current versions only *)
  idx_2l_cur_hash : Secondary_index.t;
  idx_2l_hist_heap : Secondary_index.t;
}

let build_fig10 (conv_w : Workload.t) =
  let schema = Workload.schema_for Workload.Temporal in
  let tuples which =
    Workload.tuples_for ~scale ~kind:Workload.Temporal ~seed ~which schema
  in
  let mk which ~name ~organization ~clustered =
    let store =
      Two_level_store.create ~name ~schema ~organization ~clustered
        (tuples which)
    in
    evolve_store store ~rounds:report_uc;
    store
  in
  let hash_org = Relation_file.Hash { key_attr = 0; fillfactor = 100 } in
  let isam_org = Relation_file.Isam { key_attr = 0; fillfactor = 100 } in
  let store_h_simple =
    mk `H ~name:"h_simple" ~organization:hash_org ~clustered:false
  in
  let store_h_clustered =
    mk `H ~name:"twolevel_h" ~organization:hash_org ~clustered:true
  in
  let store_i_simple =
    mk `I ~name:"i_simple" ~organization:isam_org ~clustered:false
  in
  let store_i_clustered =
    mk `I ~name:"twolevel_i" ~organization:isam_org ~clustered:true
  in
  (* The query clock must stand after the last evolution stamp, or the
     default as-of/overlap "now" sees no current versions at all. *)
  let after_evolution =
    Chronon.add_seconds Workload.evolution_base ((report_uc + 1) * 86400)
  in
  let query_db =
    match Database.create ~start:after_evolution () with
    | Ok db -> db
    | Error e -> Tdb_error.internal "bench setup: %s" e
  in
  let adopt rel var =
    (match Database.adopt_relation query_db rel with
    | Ok () -> ()
    | Error e -> Tdb_error.internal "bench setup: %s" e);
    match Database.set_range query_db ~var ~rel:(Relation_file.name rel) with
    | Ok () -> ()
    | Error e -> Tdb_error.internal "bench setup: %s" e
  in
  adopt (Two_level_store.primary store_h_clustered) "h";
  adopt (Two_level_store.primary store_i_clustered) "i";
  (* Secondary indexes on amount.  1-level: every version of the
     conventional relation; 2-level: split between current and history
     versions of the two-level store. *)
  let conv_h = Workload.h_rel conv_w in
  let amount_of tu = tu.(1) in
  let one_level_entries =
    let acc = ref [] in
    Relation_file.scan conv_h (fun tid tu -> acc := (amount_of tu, tid) :: !acc);
    List.rev !acc
  in
  let current_entries =
    List.map
      (fun (tid, tu) -> (amount_of tu, tid))
      (Two_level_store.current_tids store_h_clustered)
  in
  let history_entries =
    List.map
      (fun (tid, tu) -> (amount_of tu, tid))
      (Two_level_store.history_tids store_h_clustered)
  in
  {
    store_h_simple;
    store_h_clustered;
    store_i_simple;
    store_i_clustered;
    query_db;
    conv_w;
    idx_1l_heap =
      Secondary_index.build ~structure:Secondary_index.Heap_index
        ~key_type:Attr_type.I4 one_level_entries;
    idx_1l_hash =
      Secondary_index.build ~structure:Secondary_index.Hash_index
        ~key_type:Attr_type.I4 one_level_entries;
    idx_2l_cur_heap =
      Secondary_index.build ~structure:Secondary_index.Heap_index
        ~key_type:Attr_type.I4 current_entries;
    idx_2l_cur_hash =
      Secondary_index.build ~structure:Secondary_index.Hash_index
        ~key_type:Attr_type.I4 current_entries;
    idx_2l_hist_heap =
      Secondary_index.build ~structure:Secondary_index.Heap_index
        ~key_type:Attr_type.I4 history_entries;
  }

(* Version scan over a two-level store: primary access plus the history
   chain (Q01/Q02's shape). *)
let version_scan_cost store key =
  Two_level_store.reset_io store;
  let n = ref 0 in
  Two_level_store.version_scan store (Value.Int key) (fun _ -> incr n);
  (Two_level_store.io store).Io_stats.reads

let current_lookup_cost store key =
  Two_level_store.reset_io store;
  Two_level_store.current_lookup store (Value.Int key) (fun _ -> ());
  (Two_level_store.io store).Io_stats.reads

let current_scan_cost store =
  Two_level_store.reset_io store;
  Two_level_store.current_scan store (fun _ -> ());
  (Two_level_store.io store).Io_stats.reads

let scan_all_cost store =
  Two_level_store.reset_io store;
  Two_level_store.scan_all store (fun _ -> ());
  (Two_level_store.io store).Io_stats.reads

(* Q07 through a 1-level secondary index over the conventional relation:
   index lookup, then fetch every listed version and keep the current one. *)
let indexed_q07_conventional rel idx value =
  Buffer_pool.invalidate (Relation_file.pool rel);
  Io_stats.reset (Relation_file.stats rel);
  Secondary_index.reset_io idx;
  let tids = Secondary_index.lookup idx (Value.Int value) in
  let hits = ref 0 in
  let schema = Relation_file.schema rel in
  List.iter
    (fun tid ->
      let tu = Relation_file.read rel tid in
      if Tdb_relation.Tuple.is_current schema tu then incr hits)
    tids;
  (Secondary_index.io idx).Io_stats.reads
  + Io_stats.reads (Relation_file.stats rel)

(* Q07 through the current level of a 2-level index: index lookup, then
   fetch from the primary store. *)
let indexed_q07_two_level store idx value =
  Two_level_store.reset_io store;
  Secondary_index.reset_io idx;
  let tids = Secondary_index.lookup idx (Value.Int value) in
  List.iter (fun tid -> ignore (Two_level_store.fetch_current store tid)) tids;
  (Secondary_index.io idx).Io_stats.reads
  + (Two_level_store.io store).Io_stats.reads

let measure_query_db db src =
  Database.reset_io db;
  match Engine.execute db src with
  | Ok [ Engine.Rows { io; _ } ] -> io.Tdb_query.Executor.input_reads
  | Ok _ -> Tdb_error.internal "expected rows: %s" src
  | Error e -> Tdb_error.internal "bench query failed: %s" e

let figure10 conv env =
  print_endline "== Figure 10: Improvements for the temporal database ==";
  let q text = measure_query_db env.query_db text in
  let qtext qid =
    Option.get (Paper_queries.text qid Workload.Temporal)
  in
  let c0 qid = cost_str conv ~uc:0 qid in
  let c14 qid = cost_str conv ~uc:report_uc qid in
  let s v = string_of_int v in
  let rows =
    [
      [ "Q01"; c0 Paper_queries.Q01; c14 Paper_queries.Q01;
        s (version_scan_cost env.store_h_simple 500);
        s (version_scan_cost env.store_h_clustered 500); "-"; "-"; "-"; "-" ];
      [ "Q02"; c0 Paper_queries.Q02; c14 Paper_queries.Q02;
        s (version_scan_cost env.store_i_simple 500);
        s (version_scan_cost env.store_i_clustered 500); "-"; "-"; "-"; "-" ];
      [ "Q03"; c0 Paper_queries.Q03; c14 Paper_queries.Q03;
        s (scan_all_cost env.store_h_simple);
        s (scan_all_cost env.store_h_clustered); "-"; "-"; "-"; "-" ];
      [ "Q05"; c0 Paper_queries.Q05; c14 Paper_queries.Q05;
        s (current_lookup_cost env.store_h_simple 500);
        s (current_lookup_cost env.store_h_clustered 500); "-"; "-"; "-"; "-" ];
      [ "Q06"; c0 Paper_queries.Q06; c14 Paper_queries.Q06;
        s (current_lookup_cost env.store_i_simple 500);
        s (current_lookup_cost env.store_i_clustered 500); "-"; "-"; "-"; "-" ];
      [ "Q07"; c0 Paper_queries.Q07; c14 Paper_queries.Q07;
        s (current_scan_cost env.store_h_simple);
        s (current_scan_cost env.store_h_clustered);
        s (indexed_q07_conventional (Workload.h_rel env.conv_w) env.idx_1l_heap
             Workload.hot_h_amount);
        s (indexed_q07_conventional (Workload.h_rel env.conv_w) env.idx_1l_hash
             Workload.hot_h_amount);
        s (indexed_q07_two_level env.store_h_clustered env.idx_2l_cur_heap
             Workload.hot_h_amount);
        s (indexed_q07_two_level env.store_h_clustered env.idx_2l_cur_hash
             Workload.hot_h_amount) ];
      [ "Q08"; c0 Paper_queries.Q08; c14 Paper_queries.Q08;
        s (current_scan_cost env.store_i_simple);
        s (current_scan_cost env.store_i_clustered); "-"; "-"; "-"; "-" ];
      [ "Q09"; c0 Paper_queries.Q09; c14 Paper_queries.Q09;
        s (q (qtext Paper_queries.Q09)); "-"; "-"; "-"; "-"; "-" ];
      [ "Q10"; c0 Paper_queries.Q10; c14 Paper_queries.Q10;
        s (q (qtext Paper_queries.Q10)); "-"; "-"; "-"; "-"; "-" ];
    ]
  in
  print_endline
    (Report.table
       ~header:
         [ "Query"; "conv/0"; Printf.sprintf "conv/%d" report_uc; "2L simple";
           "2L clust"; "1L heap"; "1L hash"; "2L-ix heap"; "2L-ix hash" ]
       rows);
  Printf.printf
    "(two-level store sizes: primary %d + history %d pages; 1-level index\n\
    \ %d pages over %d entries; current index %d pages over %d entries;\n\
    \ history index %d pages)\n"
    (Two_level_store.primary_pages env.store_h_clustered)
    (Two_level_store.history_pages env.store_h_clustered)
    (Secondary_index.npages env.idx_1l_heap)
    (Secondary_index.entry_count env.idx_1l_heap)
    (Secondary_index.npages env.idx_2l_cur_heap)
    (Secondary_index.entry_count env.idx_2l_cur_heap)
    (Secondary_index.npages env.idx_2l_hist_heap);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Time-fence pruning experiment                                       *)
(* ------------------------------------------------------------------ *)

let pruning_section () =
  print_endline "== Pruning: time-fence skip-scans, fences on vs off ==";
  print_endline
    "(the same evolving temporal database measured twice per update count;\n\
    \ 'skip' counts pages refuted by their fence, 'ratio' is the fenced\n\
    \ growth rate over the unfenced one, 'same' checks bit-identical rows)";
  let pr = Pruning.run ~scale ~kind:Workload.Temporal ~loading:100 ~seed ~max_uc () in
  print_endline (Pruning.table pr);
  Printf.printf
    "(rollback queries at UC %d: %d pages skipped, worst growth ratio %s -\n\
    \ their as-of bound precedes the evolution epoch, so every page an\n\
    \ update round writes is fenced out without being read)\n"
    max_uc
    (Pruning.as_of_skipped pr)
    (match Pruning.worst_as_of_ratio pr with
    | Some r -> Report.centi r
    | None -> "-");
  print_newline ();
  pr

(* The regression gate behind the section: pruning must bite on the
   rollback queries and must never change a result. *)
let pruning_guard pr =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "pruning guard failed: %s\n%!" msg;
        exit 1)
      fmt
  in
  if not (Pruning.all_identical pr) then
    fail "fences changed a query result (see the 'same' column)";
  if Pruning.as_of_skipped pr = 0 then
    fail "rollback queries skipped no pages at UC %d" max_uc;
  match Pruning.worst_as_of_ratio pr with
  | None -> fail "no rollback query showed unfenced cost growth"
  | Some r when r >= 1.0 ->
      fail "fenced growth rate did not improve on unfenced (ratio %.2f)" r
  | Some _ -> ()

let json_of_pruning (pr : Pruning.t) =
  let cell (m : Pruning.measurement) =
    Json.Obj
      [
        ("cost_off", Json.int m.cost_off);
        ("cost_on", Json.int m.cost_on);
        ("skipped", Json.int m.skipped);
        ("identical", Json.Bool m.identical);
      ]
  in
  let qseries (s : Pruning.qseries) =
    Json.Obj
      [
        ("query", Json.Str (Paper_queries.name s.qid));
        ("cells", Json.List (List.map cell (Array.to_list s.cells)));
        ("growth_off", Json.Num (Pruning.growth pr s ~on:false));
        ("growth_on", Json.Num (Pruning.growth pr s ~on:true));
        ( "ratio",
          match Pruning.ratio pr s with
          | Some r -> Json.Num r
          | None -> Json.Null );
      ]
  in
  Json.Obj
    [
      ("kind", Json.Str (Workload.kind_to_string pr.kind));
      ("loading", Json.int pr.loading);
      ("max_uc", Json.int pr.max_uc);
      ("queries", Json.List (List.map qseries pr.series));
      ("all_identical", Json.Bool (Pruning.all_identical pr));
      ( "as_of",
        Json.Obj
          [
            ( "queries",
              Json.List
                (List.map
                   (fun q -> Json.Str (Paper_queries.name q))
                   Pruning.as_of_queries) );
            ("skipped", Json.int (Pruning.as_of_skipped pr));
            ( "worst_ratio",
              match Pruning.worst_as_of_ratio pr with
              | Some r -> Json.Num r
              | None -> Json.Null );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_buffers (conv_w : Workload.t) =
  print_endline "== Ablation: buffer pool size (temporal 100%, UC=14) ==";
  let resize frames =
    Buffer_pool.resize (Relation_file.pool (Workload.h_rel conv_w)) ~frames;
    Buffer_pool.resize (Relation_file.pool (Workload.i_rel conv_w)) ~frames
  in
  let qs = Paper_queries.[ Q01; Q07; Q09; Q11; Q12 ] in
  let rows =
    List.map
      (fun frames ->
        resize frames;
        string_of_int frames
        :: List.map
             (fun qid ->
               let src = Option.get (Paper_queries.text qid Workload.Temporal) in
               string_of_int (Evolve.measure_query conv_w src))
             qs)
      [ 1; 8; 64; 4096 ]
  in
  resize 1;
  print_endline
    (Report.table
       ~header:("frames/relation" :: List.map Paper_queries.name qs)
       rows);
  print_endline
    "(the paper fixes one buffer per relation; single-access and one-pass\n\
    \ queries are insensitive, while Q11's repeated inner scans collapse\n\
    \ once the pool holds the whole inner relation)";
  print_newline ()

let ablation_crossover runs =
  print_endline
    "== Ablation: loading factor crossover (temporal database, Q10) ==";
  (* The paper's section 6: "better performance is achieved with a lower
     loading factor when the update count is high", its example being Q10's
     3385 pages at 50% vs 2233 at 100% for update count 0. *)
  let t100 = List.find (fun r -> r.kind = Workload.Temporal && r.loading = 100) runs in
  let t50 = List.find (fun r -> r.kind = Workload.Temporal && r.loading = 50) runs in
  let rows =
    List.init (max_uc + 1) (fun uc ->
        [
          string_of_int uc;
          cost_str t100 ~uc Paper_queries.Q10;
          cost_str t50 ~uc Paper_queries.Q10;
          (if cost t50 ~uc Paper_queries.Q10 < cost t100 ~uc Paper_queries.Q10
           then "50%" else "100%");
        ])
  in
  print_endline
    (Report.table ~header:[ "UC"; "100% loading"; "50% loading"; "cheaper" ] rows);
  print_endline
    "(lower loading costs more while the update count is low - more primary\n\
    \ pages to read - and wins once overflow chains dominate: section 6's\n\
    \ trade-off.  For a pure sequential scan like Q07, 100% loading stays\n\
    \ ahead at every update count.)";
  print_newline ()

let ablation_overflow_placement () =
  print_endline
    "== Ablation: overflow placement, first-fit vs tail-append ==";
  print_endline
    "(part 1 - append-only evolution, rollback database at 50% loading:\n\
    \ the two policies coincide, because under the section-4 semantics no\n\
    \ slot is ever freed and slack only ever exists at the chain tail.\n\
    \ Figure 8(b)'s staircase is tail slack from the fillfactor, not\n\
    \ mid-chain reuse)";
  let measure policy =
    let w = Workload.build ~scale ~kind:Workload.Rollback ~loading:50 ~seed () in
    Relation_file.set_first_fit (Workload.h_rel w) policy;
    let q01 = Option.get (Paper_queries.text Paper_queries.Q01 Workload.Rollback) in
    List.init 9 (fun uc ->
        if uc > 0 then Evolve.uniform_round w ~round:uc;
        Evolve.measure_query w q01)
  in
  let first_fit = measure true in
  let tail = measure false in
  let rows =
    List.mapi
      (fun uc (a, b) -> [ string_of_int uc; string_of_int a; string_of_int b ])
      (List.combine first_fit tail)
  in
  print_endline
    (Report.table ~header:[ "UC"; "first-fit (Q01)"; "tail-append (Q01)" ] rows);
  print_endline
    "(part 2 - the policies diverge when holes open on interior chain pages\n\
    \ while the tail is full: here half the records on the first three pages\n\
    \ of a 4-page chain are deleted, then two pages' worth of fresh records\n\
    \ arrive.  Steady-state churn workloads re-converge - holes migrate to\n\
    \ the tail eventually - so this is the adversarial corner.)";
  let demo policy =
    let schema = Workload.schema_for Workload.Static in
    let rel = Relation_file.create ~name:"demo" ~schema () in
    (* all keys congruent mod 4: one bucket holds everything, chained over
       4 pages; the other 3 buckets stay empty *)
    for k = 0 to 31 do
      ignore
        (Relation_file.insert rel
           [| Value.Int (4 * k); Value.Int 0; Value.Int 0; Value.Str "x" |])
    done;
    Relation_file.modify rel (Relation_file.Hash { key_attr = 0; fillfactor = 100 });
    Relation_file.set_first_fit rel policy;
    (* punch holes in the interior pages (the first 24 records) *)
    let victims = ref [] in
    Relation_file.scan rel (fun tid tu ->
        match tu.(0) with
        | Value.Int key when key < 96 && key / 4 mod 2 = 0 ->
            victims := tid :: !victims
        | _ -> ());
    List.iter (Relation_file.delete rel) !victims;
    for i = 0 to 15 do
      ignore
        (Relation_file.insert rel
           [| Value.Int (4000 + (4 * i)); Value.Int 1; Value.Int 0; Value.Str "x" |])
    done;
    Relation_file.npages rel
  in
  Printf.printf
    "  chain size after refill: first-fit %d pages, tail-append %d pages\n\n"
    (demo true) (demo false)

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock micro-benchmarks                                *)
(* ------------------------------------------------------------------ *)

let timing (temporal100_w : Workload.t) env =
  print_endline "== Timing (bechamel): wall clock per operation ==";
  let open Bechamel in
  let query name src w =
    Test.make ~name (Staged.stage (fun () -> ignore (Evolve.measure_query w src)))
  in
  let tests =
    [
      Test.make ~name:"fig5/size-scan"
        (Staged.stage (fun () ->
             ignore (Relation_file.npages (Workload.h_rel temporal100_w))));
      query "fig6/q01-version-scan"
        (Option.get (Paper_queries.text Paper_queries.Q01 Workload.Temporal))
        temporal100_w;
      query "fig7/q07-sequential-scan"
        (Option.get (Paper_queries.text Paper_queries.Q07 Workload.Temporal))
        temporal100_w;
      query "fig8/q03-rollback"
        (Option.get (Paper_queries.text Paper_queries.Q03 Workload.Temporal))
        temporal100_w;
      query "fig9/q12-all-clauses"
        (Option.get (Paper_queries.text Paper_queries.Q12 Workload.Temporal))
        temporal100_w;
      Test.make ~name:"fig10/q07-two-level-hash-index"
        (Staged.stage (fun () ->
             ignore
               (indexed_q07_two_level env.store_h_clustered env.idx_2l_cur_hash
                  Workload.hot_h_amount)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let raw = Benchmark.all cfg [ instance ] test in
    let results = Analyze.all ols instance raw in
    results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%.0f ns/run" e
            | _ -> "n/a"
          in
          Printf.printf "  %-36s %s\n%!" name ns)
        results)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Executor throughput: tuples/sec and wall time per query             *)
(* ------------------------------------------------------------------ *)

(* The page-I/O grid is invariant under executor changes by construction;
   this section measures what those changes are allowed to move: wall
   time.  Each query runs repeatedly on the evolved temporal database
   (pruning off, like the grid, so scans do the paper's full work) and the
   best run is kept — the minimum is the least noisy estimator on a warm
   cache.  A committed baseline file maps "uc<N>" to tuples/sec per query,
   so any build can report its speedup against the build that wrote it. *)

type throughput = {
  tp_qid : Paper_queries.id;
  tp_tuples : int;  (* result tuples per run *)
  tp_reads : int;  (* page reads per run, for the record *)
  tp_wall_s : float;  (* best single-run wall time *)
  tp_per_s : float;  (* result tuples per second at the best run *)
}

let throughput_queries =
  Paper_queries.[ Q01; Q03; Q04; Q07; Q09; Q11 ]

let throughput_measure (w : Workload.t) qid =
  let src = Option.get (Paper_queries.text qid Workload.Temporal) in
  let tp_reads, tp_tuples = Evolve.measure_query_result w src in
  let best = ref infinity in
  let runs = ref 0 in
  let deadline = Unix.gettimeofday () +. 0.4 in
  while !runs < 3 || (!runs < 200 && Unix.gettimeofday () < deadline) do
    let t0 = Unix.gettimeofday () in
    ignore (Evolve.measure_query_result w src);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    incr runs
  done;
  {
    tp_qid = qid;
    tp_tuples;
    tp_reads;
    tp_wall_s = !best;
    tp_per_s = float_of_int (max 1 tp_tuples) /. !best;
  }

let throughput_baseline_key = Printf.sprintf "uc%d" max_uc
let throughput_baseline_file = "bench/throughput_baseline.json"

(* baseline: query name -> tuples/sec, from the committed file, for this
   run's update count.  Missing file, bad parse, missing key: no columns. *)
let throughput_baseline () =
  if not (Sys.file_exists throughput_baseline_file) then None
  else
    let ic = open_in_bin throughput_baseline_file in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse content with
    | Error _ -> None
    | Ok (Json.Obj entries) -> (
        match List.assoc_opt throughput_baseline_key entries with
        | Some (Json.Obj qs) ->
            Some
              (List.filter_map
                 (function q, Json.Num v -> Some (q, v) | _ -> None)
                 qs)
        | _ -> None)
    | Ok _ -> None

let write_throughput_baseline path results =
  (* merge: keep other update counts' entries, replace this one's *)
  let existing =
    if not (Sys.file_exists path) then []
    else
      let ic = open_in_bin path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.parse content with Ok (Json.Obj e) -> e | _ -> []
  in
  let entry =
    Json.Obj
      (List.map
         (fun r -> (Paper_queries.name r.tp_qid, Json.Num r.tp_per_s))
         results)
  in
  let merged =
    (throughput_baseline_key, entry)
    :: List.remove_assoc throughput_baseline_key existing
  in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (Json.Obj (List.sort compare merged)));
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "[bench] wrote throughput baseline %s (%s)\n%!" path
    throughput_baseline_key

let throughput_section (w : Workload.t) =
  print_endline "== Throughput: tuples/sec per query (temporal 100%) ==";
  let results = List.map (throughput_measure w) throughput_queries in
  let baseline = throughput_baseline () in
  let rows =
    List.map
      (fun r ->
        let base =
          Option.bind baseline
            (List.assoc_opt (Paper_queries.name r.tp_qid))
        in
        [
          Paper_queries.name r.tp_qid;
          string_of_int r.tp_tuples;
          string_of_int r.tp_reads;
          Printf.sprintf "%.2f" (r.tp_wall_s *. 1e3);
          Printf.sprintf "%.0f" r.tp_per_s;
          (match base with Some b -> Printf.sprintf "%.0f" b | None -> "-");
          (match base with
          | Some b when b > 0. -> Printf.sprintf "%.2fx" (r.tp_per_s /. b)
          | _ -> "-");
        ])
      results
  in
  print_endline
    (Report.table
       ~header:
         [ "Query"; "tuples"; "pages"; "best ms"; "tuples/s";
           "baseline"; "speedup" ]
       rows);
  print_endline
    "(best of repeated runs; 'baseline' is the committed pre-refactor\n\
    \ tuples/sec for this update count, 'speedup' this build against it)";
  print_newline ();
  Option.iter
    (fun path -> write_throughput_baseline path results)
    throughput_baseline_path;
  results

let json_of_throughput results =
  let baseline = throughput_baseline () in
  Json.Obj
    [
      ("baseline_key", Json.Str throughput_baseline_key);
      ( "queries",
        Json.List
          (List.map
             (fun r ->
               let base =
                 Option.bind baseline
                   (List.assoc_opt (Paper_queries.name r.tp_qid))
               in
               Json.Obj
                 [
                   ("query", Json.Str (Paper_queries.name r.tp_qid));
                   ("tuples", Json.int r.tp_tuples);
                   ("reads", Json.int r.tp_reads);
                   ("wall_s", Json.Num r.tp_wall_s);
                   ("tuples_per_s", Json.Num r.tp_per_s);
                   ( "baseline_tuples_per_s",
                     match base with Some b -> Json.Num b | None -> Json.Null
                   );
                   ( "speedup",
                     match base with
                     | Some b when b > 0. -> Json.Num (r.tp_per_s /. b)
                     | _ -> Json.Null );
                 ])
             results) );
    ]

(* ------------------------------------------------------------------ *)
(* Parallel execution: wall time against worker domains                 *)
(* ------------------------------------------------------------------ *)

(* The domain-pool executor must be invisible in results and visible only
   in wall time.  Each query runs at 1..4 workers against the same
   database; the rows are compared against the workers=1 run verbatim
   (the partition-order merge is deterministic, so even row order must
   survive), and the best-of-runs wall time gives the speedup curve.
   Measured at update count 0 and at max_uc, since long version chains
   are where partitioned scans have work to divide. *)

type parallel_cell = {
  pl_workers : int;
  pl_wall_s : float;  (* best single-run wall time *)
  pl_identical : bool;  (* rows verbatim-equal to the workers=1 run *)
}

type parallel_series = {
  pl_qid : Paper_queries.id;
  pl_uc : int;
  pl_cells : parallel_cell list;
}

let parallel_queries = Paper_queries.[ Q01; Q03; Q04; Q11 ]
let parallel_workers = [ 1; 2; 3; 4 ]

let parallel_rows (w : Workload.t) src =
  match Engine.execute w.Workload.db src with
  | Ok [ Engine.Rows { tuples; _ } ] ->
      List.map
        (fun tu ->
          String.concat "|" (Array.to_list (Array.map Value.to_string tu)))
        tuples
  | Ok _ -> Tdb_error.internal "expected rows: %s" src
  | Error e -> Tdb_error.internal "bench query failed: %s" e

let parallel_measure (w : Workload.t) ~uc qid =
  let src = Option.get (Paper_queries.text qid Workload.Temporal) in
  Engine.set_parallelism (Some 1);
  let reference = parallel_rows w src in
  let cells =
    List.map
      (fun workers ->
        Engine.set_parallelism (Some workers);
        let rows = parallel_rows w src in
        let best = ref infinity in
        let runs = ref 0 in
        let deadline = Unix.gettimeofday () +. 0.3 in
        while !runs < 3 || (!runs < 100 && Unix.gettimeofday () < deadline) do
          let t0 = Unix.gettimeofday () in
          ignore (parallel_rows w src);
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt;
          incr runs
        done;
        {
          pl_workers = workers;
          pl_wall_s = !best;
          pl_identical = rows = reference;
        })
      parallel_workers
  in
  Engine.set_parallelism (Some 1);
  { pl_qid = qid; pl_uc = uc; pl_cells = cells }

let parallel_section (evolved : Workload.t) =
  print_endline "== Parallel: wall time vs worker domains (temporal 100%) ==";
  let fresh = Workload.build ~scale ~kind:Workload.Temporal ~loading:100 ~seed () in
  let series =
    List.map (parallel_measure fresh ~uc:0) parallel_queries
    @ List.map (parallel_measure evolved ~uc:max_uc) parallel_queries
  in
  let rows =
    List.map
      (fun s ->
        let wall k = (List.nth s.pl_cells k).pl_wall_s in
        (Paper_queries.name s.pl_qid :: string_of_int s.pl_uc
        :: List.map
             (fun c -> Printf.sprintf "%.2f" (c.pl_wall_s *. 1e3))
             s.pl_cells)
        @ [
            Printf.sprintf "%.2fx" (wall 0 /. wall 3);
            (if List.for_all (fun c -> c.pl_identical) s.pl_cells then "yes"
             else "NO");
          ])
      series
  in
  print_endline
    (Report.table
       ~header:
         [ "Query"; "uc"; "w=1 ms"; "w=2 ms"; "w=3 ms"; "w=4 ms";
           "speedup"; "same rows" ]
       rows);
  Printf.printf
    "(best of repeated runs at each worker count; this machine recommends\n\
    \ %d domain(s), speedups only appear above one)\n\n"
    (Domain.recommended_domain_count ());
  series

(* Row identity across worker counts is a correctness property, not a
   performance one: any divergence fails the benchmark run. *)
let parallel_guard series =
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          if not c.pl_identical then begin
            Printf.eprintf
              "FATAL: %s at uc %d returned different rows with %d workers\n"
              (Paper_queries.name s.pl_qid) s.pl_uc c.pl_workers;
            exit 1
          end)
        s.pl_cells)
    series

let json_of_parallel series =
  Json.Obj
    [
      ("recommended_domains", Json.int (Domain.recommended_domain_count ()));
      ("workers", Json.List (List.map Json.int parallel_workers));
      ( "queries",
        Json.List
          (List.map
             (fun s ->
               let w1 = (List.hd s.pl_cells).pl_wall_s in
               Json.Obj
                 [
                   ("query", Json.Str (Paper_queries.name s.pl_qid));
                   ("uc", Json.int s.pl_uc);
                   ( "cells",
                     Json.List
                       (List.map
                          (fun c ->
                            Json.Obj
                              [
                                ("workers", Json.int c.pl_workers);
                                ("wall_s", Json.Num c.pl_wall_s);
                                ("speedup", Json.Num (w1 /. c.pl_wall_s));
                                ("identical", Json.Bool c.pl_identical);
                              ])
                          s.pl_cells) );
                   ( "identical",
                     Json.Bool
                       (List.for_all (fun c -> c.pl_identical) s.pl_cells) );
                 ])
             series) );
    ]

(* ------------------------------------------------------------------ *)
(* Scale sweep: where parallelism starts to pay                        *)
(* ------------------------------------------------------------------ *)

(* The paper's 1024-row relations are too small to amortize domain
   fan-out (BENCH_5's Q03 ran at 0.44x with 4 workers).  This section
   rebuilds the temporal workload at a ladder of scales — independent of
   the --scale flag, so the canonical scale-1 document still probes the
   large-data regime — evolves each two rounds to give history some
   depth, and measures wall time at 1/2/4 workers with fence pruning on
   (the tentpole claim is that shard pruning and partition-parallelism
   compose).  Row identity across worker counts is a hard failure, as in
   the parallel section; the speedup gates live in Compare, where
   recommended_domains decides whether this host's numbers are
   meaningful. *)

type scale_cell = {
  sc_workers : int;
  sc_wall_s : float;  (* best single-run wall time *)
  sc_identical : bool;  (* rows verbatim-equal to the workers=1 run *)
}

type scale_series = {
  sc_qid : Paper_queries.id;
  sc_scale : int;
  sc_cells : scale_cell list;
}

let scale_sweep_queries = Paper_queries.[ Q01; Q03; Q04; Q09; Q11 ]
let scale_sweep_scales = if smoke then [ 1; 10 ] else [ 1; 10; 100 ]
let scale_sweep_workers = [ 1; 2; 4 ]
let scale_sweep_rounds = 2

let scale_measure (w : Workload.t) qid =
  let src = Option.get (Paper_queries.text qid Workload.Temporal) in
  Engine.set_parallelism (Some 1);
  let reference = parallel_rows w src in
  let cells =
    List.map
      (fun workers ->
        Engine.set_parallelism (Some workers);
        let rows = parallel_rows w src in
        let best = ref infinity in
        let runs = ref 0 in
        let deadline = Unix.gettimeofday () +. 0.3 in
        while !runs < 3 || (!runs < 100 && Unix.gettimeofday () < deadline) do
          let t0 = Unix.gettimeofday () in
          ignore (parallel_rows w src);
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt;
          incr runs
        done;
        {
          sc_workers = workers;
          sc_wall_s = !best;
          sc_identical = rows = reference;
        })
      scale_sweep_workers
  in
  Engine.set_parallelism (Some 1);
  { sc_qid = qid; sc_scale = w.Workload.scale; sc_cells = cells }

let scale_section () =
  print_endline
    "== Scale sweep: wall time vs workers as the data grows (temporal 100%) ==";
  let series =
    Time_fence.with_pruning true (fun () ->
        List.concat_map
          (fun sc ->
            let w =
              Workload.build ~scale:sc ~kind:Workload.Temporal ~loading:100
                ~seed ()
            in
            for round = 1 to scale_sweep_rounds do
              Evolve.uniform_round w ~round
            done;
            List.map (scale_measure w) scale_sweep_queries)
          scale_sweep_scales)
  in
  let rows =
    List.map
      (fun s ->
        let wall k = (List.nth s.sc_cells k).sc_wall_s in
        (Paper_queries.name s.sc_qid :: string_of_int s.sc_scale
        :: List.map
             (fun c -> Printf.sprintf "%.2f" (c.sc_wall_s *. 1e3))
             s.sc_cells)
        @ [
            Printf.sprintf "%.2fx" (wall 0 /. wall 2);
            (if List.for_all (fun c -> c.sc_identical) s.sc_cells then "yes"
             else "NO");
          ])
      series
  in
  print_endline
    (Report.table
       ~header:
         [ "Query"; "scale"; "w=1 ms"; "w=2 ms"; "w=4 ms"; "speedup";
           "same rows" ]
       rows);
  Printf.printf
    "(each scale is a fresh temporal database evolved %d rounds, measured\n\
    \ with fence pruning on; best of repeated runs; this machine recommends\n\
    \ %d domain(s), speedups only appear above one)\n\n"
    scale_sweep_rounds
    (Domain.recommended_domain_count ());
  series

let scale_guard series =
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          if not c.sc_identical then begin
            Printf.eprintf
              "FATAL: %s at scale %d returned different rows with %d workers\n"
              (Paper_queries.name s.sc_qid) s.sc_scale c.sc_workers;
            exit 1
          end)
        s.sc_cells)
    series

let json_of_scale_sweep series =
  Json.Obj
    [
      ("recommended_domains", Json.int (Domain.recommended_domain_count ()));
      ("scales", Json.List (List.map Json.int scale_sweep_scales));
      ("workers", Json.List (List.map Json.int scale_sweep_workers));
      ("rounds", Json.int scale_sweep_rounds);
      ( "queries",
        Json.List
          (List.map
             (fun s ->
               let w1 = (List.hd s.sc_cells).sc_wall_s in
               Json.Obj
                 [
                   ("query", Json.Str (Paper_queries.name s.sc_qid));
                   ("scale", Json.int s.sc_scale);
                   ( "cells",
                     Json.List
                       (List.map
                          (fun c ->
                            Json.Obj
                              [
                                ("workers", Json.int c.sc_workers);
                                ("wall_s", Json.Num c.sc_wall_s);
                                ("speedup", Json.Num (w1 /. c.sc_wall_s));
                                ("identical", Json.Bool c.sc_identical);
                              ])
                          s.sc_cells) );
                   ( "identical",
                     Json.Bool
                       (List.for_all (fun c -> c.sc_identical) s.sc_cells) );
                 ])
             series) );
    ]

(* ------------------------------------------------------------------ *)
(* Durability: the write-ahead journal's cost on the update workload   *)
(* ------------------------------------------------------------------ *)

(* The statement journal is a correctness feature, so the numbers worth
   publishing are (a) that every configuration of the same update
   workload ends with bit-identical relation contents and (b) what the
   journal's pre-images, commit records and group fsyncs cost.  The
   workload is file-backed (the journal only exists for file-backed
   databases) and runs three ways:

     journal    - the journal on, checkpoint at the end (the default)
     buffered   - no journal: writes pool in memory until the checkpoint,
                  so a crash loses everything since the last sync
     sync/stmt  - no journal, [Database.sync] after every statement: the
                  naive way to buy the same statement-level durability

   Journal vs buffered is fsync against no-I/O-at-all — an honest
   number, but it measures the disk, so it is published ungated.  The
   gate is journal vs sync-per-statement: both pay durable I/O per
   statement, and the journal (one group fsync of a few records) must
   beat flushing every dirty page plus two atomic metadata rewrites. *)

type durability_cell = {
  du_phase : string;
  du_on_s : float;  (* wall time with the journal *)
  du_off_s : float;  (* wall time fully buffered *)
  du_naive_s : float;  (* wall time with sync-per-statement *)
}

type durability = {
  du_rows : int;
  du_sweeps : int;
  du_cells : durability_cell list;
  du_identical : bool;  (* raw relation dumps verbatim-equal across runs *)
  du_vs_buffered : float;  (* journalled / buffered total wall time *)
  du_vs_naive : float;  (* journalled / sync-per-statement total wall time *)
}

(* The journal must not cost more than the durability it replaces. *)
let durability_ceiling = 1.0
let durability_rows = if smoke then 40 else 150
let durability_sweeps = if smoke then 2 else 4

let durability_exec db src =
  match Engine.execute db src with
  | Ok _ -> ()
  | Error e -> Tdb_error.internal "durability workload failed on %s: %s" src e

(* The identity check compares the raw stored tuples — every attribute,
   implicit stamps included — not query output, so a journal bug that
   corrupts history versions invisible to as-of-now queries still trips
   it. *)
let durability_dump db =
  List.concat_map
    (fun name ->
      match Database.find_relation db name with
      | None -> []
      | Some rel ->
          let rows = ref [] in
          Relation_file.scan rel (fun _ tu ->
              rows :=
                (name ^ "|"
                ^ String.concat "|"
                    (Array.to_list (Array.map Value.to_string tu)))
                :: !rows);
          !rows)
    (Database.relation_names db)
  |> List.sort compare

let durability_run ~journal ~sync_each dir =
  let db =
    match Database.create ~dir ~journal () with
    | Ok db -> db
    | Error e -> Tdb_error.internal "cannot open %s: %s" dir e
  in
  let clock = Database.clock db in
  let stmt src =
    durability_exec db src;
    if sync_each then Database.sync db
  in
  let cell phase f =
    let t0 = Unix.gettimeofday () in
    f ();
    (phase, Unix.gettimeofday () -. t0)
  in
  durability_exec db "create persistent interval emp (name = c12, salary = i4)";
  durability_exec db "range of e is emp";
  let cells =
    [
      cell "append" (fun () ->
          for i = 1 to durability_rows do
            Clock.advance clock 60;
            stmt
              (Printf.sprintf "append to emp (name = \"w%04d\", salary = %d)" i
                 (10_000 + (i mod 97)))
          done);
      cell "replace" (fun () ->
          for _ = 1 to durability_sweeps do
            Clock.advance clock 86_400;
            stmt "replace e (salary = e.salary + 100)"
          done);
      cell "delete" (fun () ->
          Clock.advance clock 86_400;
          stmt "delete e where e.salary < 10120");
      cell "checkpoint" (fun () -> Database.sync db);
    ]
  in
  let dump = durability_dump db in
  Database.close db;
  (cells, dump)

let durability_section () =
  print_endline "== Durability: write-ahead journal overhead (wall clock) ==";
  let with_tmp_dir tag f =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tdb_bench_dur_%d_%s" (Unix.getpid ()) tag)
    in
    let rm_rf () =
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end
    in
    rm_rf ();
    Sys.mkdir dir 0o755;
    Fun.protect ~finally:rm_rf (fun () -> f dir)
  in
  let on_cells, on_dump =
    with_tmp_dir "on" (durability_run ~journal:true ~sync_each:false)
  in
  let off_cells, off_dump =
    with_tmp_dir "off" (durability_run ~journal:false ~sync_each:false)
  in
  let naive_cells, naive_dump =
    with_tmp_dir "naive" (durability_run ~journal:false ~sync_each:true)
  in
  let cells =
    List.map2
      (fun ((phase, on_s), (phase', off_s)) (phase'', naive_s) ->
        assert (phase = phase' && phase = phase'');
        { du_phase = phase; du_on_s = on_s; du_off_s = off_s;
          du_naive_s = naive_s })
      (List.combine on_cells off_cells)
      naive_cells
  in
  let total f = List.fold_left (fun acc c -> acc +. f c) 0. cells in
  let on_total = total (fun c -> c.du_on_s) in
  let off_total = total (fun c -> c.du_off_s) in
  let naive_total = total (fun c -> c.du_naive_s) in
  let ratio a b = if b > 0. then a /. b else 1. in
  let d =
    {
      du_rows = durability_rows;
      du_sweeps = durability_sweeps;
      du_cells = cells;
      du_identical = on_dump = off_dump && on_dump = naive_dump;
      du_vs_buffered = ratio on_total off_total;
      du_vs_naive = ratio on_total naive_total;
    }
  in
  let row c =
    [
      c.du_phase;
      Printf.sprintf "%.2f" (c.du_on_s *. 1e3);
      Printf.sprintf "%.2f" (c.du_off_s *. 1e3);
      Printf.sprintf "%.2f" (c.du_naive_s *. 1e3);
    ]
  in
  print_endline
    (Report.table
       ~header:[ "phase"; "journal ms"; "buffered ms"; "sync/stmt ms" ]
       (List.map row cells
       @ [
           [
             "total";
             Printf.sprintf "%.2f" (on_total *. 1e3);
             Printf.sprintf "%.2f" (off_total *. 1e3);
             Printf.sprintf "%.2f" (naive_total *. 1e3);
           ];
         ]));
  Printf.printf
    "(%d rows, %d replace sweeps; stored tuples %s across configurations;\n\
    \ journal costs %.2fx buffered writes, %.2fx of sync-per-statement —\n\
    \ the latter is gated at %.1fx)\n\n"
    d.du_rows d.du_sweeps
    (if d.du_identical then "identical" else "DIFFER")
    d.du_vs_buffered d.du_vs_naive durability_ceiling;
  d

(* Both halves of the gate are hard failures: the journal must never
   change what a statement stores, and the statement durability it
   provides must cost no more than the naive sync-per-statement way of
   getting the same guarantee. *)
let durability_guard d =
  if not d.du_identical then begin
    Printf.eprintf
      "FATAL: durability configurations stored different tuples\n";
    exit 1
  end;
  if d.du_vs_naive > durability_ceiling then begin
    Printf.eprintf
      "FATAL: journal costs %.2fx of sync-per-statement (ceiling %.1fx)\n"
      d.du_vs_naive durability_ceiling;
    exit 1
  end

let json_of_durability d =
  Json.Obj
    [
      ("rows", Json.int d.du_rows);
      ("replace_sweeps", Json.int d.du_sweeps);
      ("identical", Json.Bool d.du_identical);
      ("overhead_vs_buffered", Json.Num d.du_vs_buffered);
      ("overhead_vs_sync_per_stmt", Json.Num d.du_vs_naive);
      ("ceiling", Json.Num durability_ceiling);
      ( "phases",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("phase", Json.Str c.du_phase);
                   ("journal_s", Json.Num c.du_on_s);
                   ("buffered_s", Json.Num c.du_off_s);
                   ("sync_per_stmt_s", Json.Num c.du_naive_s);
                 ])
             d.du_cells) );
    ]

(* ------------------------------------------------------------------ *)
(* Concurrency: snapshot readers vs the big lock                       *)
(* ------------------------------------------------------------------ *)

(* The session layer's claim: read-only statements pin the published
   commit epoch and run with no lock held, so N readers scale while one
   writer keeps committing.  Three cells measure it — 1 reader and 4
   readers through snapshot sessions, plus 4 readers through the
   engine's serialized path (the old big-lock build, every statement
   through one mutex) as the contrast.  Each cell gets a fresh workload
   so accumulated versions don't tilt later cells; readers run keyed
   probes, the writer cycles temporal replaces.  The speedup gate (4r
   snapshot throughput over 1r) lives in Compare, where
   recommended_domains decides whether this host's numbers mean
   anything. *)

type concurrency_cell = {
  cy_readers : int;
  cy_mode : string;  (* "snapshot" | "serialized" *)
  cy_reader_stmts : int;
  cy_reader_per_s : float;
  cy_p50_ms : float;
  cy_p99_ms : float;
  cy_writer_stmts : int;
}

type concurrency = {
  cy_duration_s : float;
  cy_cells : concurrency_cell list;
  cy_speedup : float;  (* 4r/1w snapshot reader throughput over 1r/1w *)
}

let concurrency_duration = if smoke then 0.3 else 1.0

let concurrency_measure ~readers ~mode =
  let w = Workload.build ~scale ~kind:Workload.Temporal ~loading:100 ~seed () in
  let inst = Db_instance.of_database w.Workload.db in
  let nkeys = Workload.n_tuples * w.Workload.scale in
  let stop = Atomic.make false in
  let execute session src =
    match mode with
    | `Serialized -> Result.map (fun _ -> ()) (Engine.execute w.Workload.db src)
    | `Snapshot -> Result.map (fun _ -> ()) (Session.execute_one session src)
  in
  let writer () =
    let s = Session.open_ ~name:"bench-w" inst in
    let n = ref 0 in
    let i = ref 0 in
    while not (Atomic.get stop) do
      let src =
        Printf.sprintf "replace h (amount = %d) where h.id = %d;"
          (1000 + (!i mod 9000))
          (!i mod nkeys)
      in
      incr i;
      (match execute s src with
      | Ok () -> incr n
      | Error e -> Tdb_error.internal "bench concurrency writer: %s" e)
    done;
    Session.close s;
    !n
  in
  let reader r () =
    let s = Session.open_ ~name:(Printf.sprintf "bench-r%d" r) inst in
    let lats = ref [] in
    let i = ref (r * 131) in
    while not (Atomic.get stop) do
      let src =
        Printf.sprintf "retrieve (h.amount) where h.id = %d;" (!i mod nkeys)
      in
      incr i;
      let t0 = Unix.gettimeofday () in
      match execute s src with
      | Ok () -> lats := (Unix.gettimeofday () -. t0) :: !lats
      | Error e -> Tdb_error.internal "bench concurrency reader: %s" e
    done;
    Session.close s;
    !lats
  in
  let wd = Domain.spawn writer in
  let rds = List.init readers (fun r -> Domain.spawn (reader r)) in
  Unix.sleepf concurrency_duration;
  Atomic.set stop true;
  let writer_stmts = Domain.join wd in
  let lats = Array.of_list (List.concat_map Domain.join rds) in
  Array.sort compare lats;
  let pct p =
    match Array.length lats with
    | 0 -> 0.0
    | n -> 1e3 *. lats.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let stmts = Array.length lats in
  Database.close w.Workload.db;
  {
    cy_readers = readers;
    cy_mode =
      (match mode with `Snapshot -> "snapshot" | `Serialized -> "serialized");
    cy_reader_stmts = stmts;
    cy_reader_per_s = float_of_int stmts /. concurrency_duration;
    cy_p50_ms = pct 0.50;
    cy_p99_ms = pct 0.99;
    cy_writer_stmts = writer_stmts;
  }

let concurrency_section () =
  print_endline
    "== Concurrency: snapshot readers vs the big lock (1 writer) ==";
  let cells =
    [
      concurrency_measure ~readers:1 ~mode:`Snapshot;
      concurrency_measure ~readers:4 ~mode:`Snapshot;
      concurrency_measure ~readers:4 ~mode:`Serialized;
    ]
  in
  let per_s ~readers ~mode =
    List.find_map
      (fun c ->
        if c.cy_readers = readers && c.cy_mode = mode then
          Some c.cy_reader_per_s
        else None)
      cells
  in
  let speedup =
    match (per_s ~readers:4 ~mode:"snapshot", per_s ~readers:1 ~mode:"snapshot")
    with
    | Some four, Some one when one > 0.0 -> four /. one
    | _ -> 0.0
  in
  print_endline
    (Report.table
       ~header:
         [ "readers"; "mode"; "stmts/s"; "p50 ms"; "p99 ms"; "writer stmts" ]
       (List.map
          (fun c ->
            [
              string_of_int c.cy_readers;
              c.cy_mode;
              Printf.sprintf "%.0f" c.cy_reader_per_s;
              Printf.sprintf "%.3f" c.cy_p50_ms;
              Printf.sprintf "%.3f" c.cy_p99_ms;
              string_of_int c.cy_writer_stmts;
            ])
          cells));
  Printf.printf
    "(4 snapshot readers run %.2fx the statements of 1 while a writer\n\
    \ commits; this machine recommends %d domain(s), scaling only appears\n\
    \ above one)\n\n"
    speedup
    (Domain.recommended_domain_count ());
  { cy_duration_s = concurrency_duration; cy_cells = cells; cy_speedup = speedup }

(* Zero completed reader statements in any cell means the harness never
   ran — a correctness failure, not a slow machine. *)
let concurrency_guard c =
  List.iter
    (fun cell ->
      if cell.cy_reader_stmts = 0 then begin
        Printf.eprintf
          "FATAL: concurrency cell %dr/%s completed no reader statements\n"
          cell.cy_readers cell.cy_mode;
        exit 1
      end)
    c.cy_cells

let json_of_concurrency c =
  Json.Obj
    [
      ("recommended_domains", Json.int (Domain.recommended_domain_count ()));
      ("duration_s", Json.Num c.cy_duration_s);
      ("speedup_4r_vs_1r", Json.Num c.cy_speedup);
      ( "cells",
        Json.List
          (List.map
             (fun cell ->
               Json.Obj
                 [
                   ("readers", Json.int cell.cy_readers);
                   ("writers", Json.int 1);
                   ("mode", Json.Str cell.cy_mode);
                   ("reader_stmts", Json.int cell.cy_reader_stmts);
                   ("reader_stmts_per_s", Json.Num cell.cy_reader_per_s);
                   ("p50_ms", Json.Num cell.cy_p50_ms);
                   ("p99_ms", Json.Num cell.cy_p99_ms);
                   ("writer_stmts", Json.int cell.cy_writer_stmts);
                 ])
             c.cy_cells) );
    ]

(* ------------------------------------------------------------------ *)
(* Temporal join: the nested loop vs the merge join                    *)
(* ------------------------------------------------------------------ *)

(* Every other section pins the temporal-algebra operators off so the
   paper grid keeps measuring the nested-loop cost model; this section
   is where the operators are allowed to run, measured against that
   fallback on the same queries.  Three query classes:

     Q09c - Q09 with the equi-join unkeyed (amount = amount instead of
            id = amount), so tuple substitution cannot rescue it: the
            nested loop rescans the inner relation per outer batch and
            evaluates every pair, the merge join partitions on the
            equi-key and sweeps.  Quadratic vs near-linear - the
            nested wall explodes with update count, so this cell is
            only measured on a paper-sized uc-0 database.
     Q11  - the paper's temporal join, verbatim: as-of selective, so
            both strategies are feasible at any scale.
     Q12  - all clauses combined, verbatim: so selective that the two
            strategies should tie - the merge join must not tax the
            queries that never needed it.

   Row identity between the strategies is a hard failure; the speedup
   gate lives in Compare and only binds cells whose nested wall clears
   the noise floor on runners with the cores to mean it. *)

type tjoin_cell = {
  tj_query : string;
  tj_uc : int;
  tj_scale : int;
  tj_rows : int;
  tj_off_s : float;  (* best nested-loop wall *)
  tj_on_s : float;  (* best merge-join wall *)
  tj_identical : bool;
}

let tjoin_noise_floor_s = 0.05

let q09c_text =
  {|retrieve (h.id, i.id, i.amount) where h.amount = i.amount
    when h overlap i and i overlap "now"|}

let tjoin_best w src =
  let best = ref infinity in
  let runs = ref 0 in
  let deadline = Unix.gettimeofday () +. 0.3 in
  while !runs < 3 || (!runs < 100 && Unix.gettimeofday () < deadline) do
    let t0 = Unix.gettimeofday () in
    ignore (parallel_rows w src);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    incr runs
  done;
  !best

let tjoin_measure (w : Workload.t) ~uc ~query src =
  let off_rows = Executor.with_temporal_join false (fun () -> parallel_rows w src) in
  let on_rows = Executor.with_temporal_join true (fun () -> parallel_rows w src) in
  let off_s = Executor.with_temporal_join false (fun () -> tjoin_best w src) in
  let on_s = Executor.with_temporal_join true (fun () -> tjoin_best w src) in
  {
    tj_query = query;
    tj_uc = uc;
    tj_scale = w.Workload.scale;
    tj_rows = List.length on_rows;
    tj_off_s = off_s;
    tj_on_s = on_s;
    tj_identical = on_rows = off_rows;
  }

let tjoin_section (evolved : Workload.t) =
  print_endline "== Temporal join: nested loop vs merge join (temporal 100%) ==";
  let paper_queries w ~uc =
    List.filter_map
      (fun qid ->
        Option.map
          (tjoin_measure w ~uc ~query:(Paper_queries.name qid))
          (Paper_queries.text qid Workload.Temporal))
      Paper_queries.[ Q11; Q12 ]
  in
  let fresh = Workload.build ~scale ~kind:Workload.Temporal ~loading:100 ~seed () in
  let paper1 =
    if scale = 1 then fresh
    else Workload.build ~scale:1 ~kind:Workload.Temporal ~loading:100 ~seed ()
  in
  let cells =
    (* the unkeyed join on the paper-sized database only: its nested
       wall is quadratic in the version count *)
    [ tjoin_measure paper1 ~uc:0 ~query:"Q09c" q09c_text ]
    @ paper_queries fresh ~uc:0
    @ paper_queries evolved ~uc:max_uc
    @
    (* the large-data regime for the selective joins, independent of
       --scale, as in the scale sweep; a smoke run stays small *)
    if smoke || scale >= 10 then []
    else begin
      let w10 =
        Workload.build ~scale:10 ~kind:Workload.Temporal ~loading:100 ~seed ()
      in
      for round = 1 to max_uc do
        Evolve.uniform_round w10 ~round
      done;
      paper_queries w10 ~uc:max_uc
    end
  in
  print_endline
    (Report.table
       ~header:
         [ "Query"; "uc"; "scale"; "rows"; "nested ms"; "merge ms";
           "speedup"; "same rows" ]
       (List.map
          (fun c ->
            [
              c.tj_query;
              string_of_int c.tj_uc;
              string_of_int c.tj_scale;
              string_of_int c.tj_rows;
              Printf.sprintf "%.2f" (c.tj_off_s *. 1e3);
              Printf.sprintf "%.2f" (c.tj_on_s *. 1e3);
              Printf.sprintf "%.2fx" (c.tj_off_s /. c.tj_on_s);
              (if c.tj_identical then "yes" else "NO");
            ])
          cells));
  print_endline
    "(best of repeated runs per strategy; Q09c is Q09 with the equi-join\n\
    \ unkeyed, measured on the paper-sized uc-0 database because its\n\
    \ nested-loop wall is quadratic in the version count)\n";
  cells

let tjoin_guard cells =
  List.iter
    (fun c ->
      if not c.tj_identical then begin
        Printf.eprintf
          "FATAL: %s at uc %d scale %d returned different rows from the \
           merge join\n"
          c.tj_query c.tj_uc c.tj_scale;
        exit 1
      end)
    cells

let json_of_tjoin cells =
  Json.Obj
    [
      ("recommended_domains", Json.int (Domain.recommended_domain_count ()));
      ("noise_floor_s", Json.Num tjoin_noise_floor_s);
      ( "queries",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("query", Json.Str c.tj_query);
                   ("uc", Json.int c.tj_uc);
                   ("scale", Json.int c.tj_scale);
                   ("rows", Json.int c.tj_rows);
                   ("off_wall_s", Json.Num c.tj_off_s);
                   ("on_wall_s", Json.Num c.tj_on_s);
                   ("speedup", Json.Num (c.tj_off_s /. c.tj_on_s));
                   ("identical", Json.Bool c.tj_identical);
                 ])
             cells) );
    ]

(* ------------------------------------------------------------------ *)
(* Section timing and the --json result document                       *)
(* ------------------------------------------------------------------ *)

(* Every figure-sized unit of work runs under [timed]: wall clock and the
   peak heap size (GC top_heap_words, a high-water mark) go to stderr for
   the human eye and into the --json document for machines. *)
type section = { s_label : string; s_wall : float; s_peak_words : int }

let sections : section list ref = ref []

let timed label f =
  let s = Unix.gettimeofday () in
  let v = f () in
  let wall = Unix.gettimeofday () -. s in
  let peak = (Gc.quick_stat ()).Gc.top_heap_words in
  sections := { s_label = label; s_wall = wall; s_peak_words = peak } :: !sections;
  Printf.eprintf "[bench] %-24s %6.1f s  peak %7dk words\n%!" label wall
    (peak / 1000);
  v

let json_of_run (r : run) =
  let cell c =
    Json.Obj
      [
        ("h_pages", Json.int c.h_pages);
        ("i_pages", Json.int c.i_pages);
        ( "costs",
          Json.Obj
            (List.map
               (fun (qid, cost) -> (Paper_queries.name qid, Json.int cost))
               c.costs) );
      ]
  in
  (* Static databases are measured once; don't repeat the UC-0 cell. *)
  let cells =
    if r.kind = Workload.Static then [ r.cells.(0) ]
    else Array.to_list r.cells
  in
  Json.Obj
    [
      ("kind", Json.Str (Workload.kind_to_string r.kind));
      ("loading", Json.int r.loading);
      ("cells", Json.List (List.map cell cells));
    ]

let result_document ~total_s ~pruning ~throughput ~parallel ~scale_sweep
    ~durability ~concurrency ~tjoin runs =
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("benchmark", Json.Str "ahn-snodgrass-sigmod-1986");
            ("seed", Json.int seed);
            ("smoke", Json.Bool smoke);
            ("scale", Json.int scale);
            ("max_uc", Json.int max_uc);
            ("report_uc", Json.int report_uc);
            ("total_wall_s", Json.Num total_s);
          ] );
      ( "sections",
        Json.List
          (List.rev_map
             (fun s ->
               Json.Obj
                 [
                   ("label", Json.Str s.s_label);
                   ("wall_s", Json.Num s.s_wall);
                   ("peak_words", Json.int s.s_peak_words);
                 ])
             !sections) );
      ("grid", Json.List (List.map json_of_run runs));
      ("pruning", json_of_pruning pruning);
      ("throughput", json_of_throughput throughput);
      ("parallel", json_of_parallel parallel);
      ("scale", json_of_scale_sweep scale_sweep);
      ("durability", json_of_durability durability);
      ("concurrency", json_of_concurrency concurrency);
      ("tjoin", json_of_tjoin tjoin);
      ("metrics", Obs_json.metrics ());
    ]

let write_json path doc =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "[bench] wrote %s\n%!" path

(* ------------------------------------------------------------------ *)

let run () =
  let t0 = Unix.gettimeofday () in
  (* The paper's cost model charges every page of a chain: the grid and
     figure sections must not skip-scan, or Figure 9's growth-rate law
     dissolves.  Only the pruning section turns fences on (and off)
     explicitly. *)
  Time_fence.set_pruning false;
  (* Pin the executor to one worker so the cost grid and every figure
     measure exactly what previous revisions measured, whatever the host's
     core count; only the parallel section varies the worker count (and
     restores this pin afterwards). *)
  Engine.set_parallelism (Some 1);
  (* The temporal-algebra operators change which pages a join touches;
     every paper-faithful section keeps measuring the nested-loop cost
     model, and only the tjoin section toggles the operators on. *)
  Executor.set_temporal_join (Some false);
  print_endline
    "Reproducing Ahn & Snodgrass, \"Performance Evaluation of a Temporal\n\
     Database Management System\" (SIGMOD 1986).\n";
  let specs =
    [
      (Workload.Static, 100); (Workload.Static, 50);
      (Workload.Rollback, 100); (Workload.Rollback, 50);
      (Workload.Historical, 100); (Workload.Historical, 50);
      (Workload.Temporal, 100); (Workload.Temporal, 50);
    ]
  in
  let collected =
    List.map
      (fun (kind, loading) ->
        timed
          (Printf.sprintf "grid %s %d%%" (Workload.kind_to_string kind) loading)
          (fun () -> collect_run ~kind ~loading))
      specs
  in
  let runs = List.map fst collected in
  let temporal100, temporal100_w = List.nth collected 6 in
  let rollback50 = fst (List.nth collected 3) in
  figure5 runs;
  figure6 temporal100;
  figure7 runs;
  figure8 ~temporal100 ~rollback50;
  figure9 runs;
  model_validation runs;
  let throughput = timed "throughput" (fun () -> throughput_section temporal100_w) in
  if smoke then print_endline "(smoke run: s5.4, ablations and timing skipped)\n"
  else timed "section 5.4" section54;
  let env = timed "figure 10 build" (fun () -> build_fig10 temporal100_w) in
  timed "figure 10" (fun () -> figure10 temporal100 env);
  let pruning = timed "pruning" pruning_section in
  pruning_guard pruning;
  let parallel =
    timed "parallel" (fun () -> parallel_section temporal100_w)
  in
  parallel_guard parallel;
  let scale_sweep = timed "scale sweep" scale_section in
  scale_guard scale_sweep;
  let durability = timed "durability" durability_section in
  durability_guard durability;
  let concurrency = timed "concurrency" concurrency_section in
  concurrency_guard concurrency;
  let tjoin = timed "tjoin" (fun () -> tjoin_section temporal100_w) in
  tjoin_guard tjoin;
  if not smoke then begin
    timed "ablations" (fun () ->
        ablation_buffers temporal100_w;
        ablation_crossover runs;
        ablation_overflow_placement ());
    try timed "timing" (fun () -> timing temporal100_w env)
    with e ->
      Printf.printf "(timing section skipped: %s)\n\n" (Printexc.to_string e)
  end;
  let total_s = Unix.gettimeofday () -. t0 in
  Option.iter
    (fun path ->
      write_json path
        (result_document ~total_s ~pruning ~throughput ~parallel ~scale_sweep
           ~durability ~concurrency ~tjoin runs))
    json_path;
  Printf.printf "Total benchmark time: %.1f s\n" total_s

(* Storage-level failures — corruption, I/O — stop the benchmark with a
   class-specific exit code and a one-line message, never a backtrace. *)
let () =
  match compare_paths with
  | Some (old_path, new_path) ->
      exit
        (Compare.run ?tolerance:compare_tolerance ~old_path ~new_path ())
  | None -> (
      try run ()
      with Tdb_error.Error (cls, msg) ->
        Printf.eprintf "fatal %s\n" (Tdb_error.message cls msg);
        exit (Tdb_error.exit_code cls))
